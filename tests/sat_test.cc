// Property tests for the CDCL solver (src/sat/solver.h) against two
// independent brute-force oracles.
//
// The solver is the proof core of the redundancy and equivalence oracles —
// a wrong kUnsat there silently "certifies" a testable fault as redundant.
// So the solver itself is pinned the classic way: thousands of random small
// CNFs, each cross-checked against (a) exhaustive truth-table enumeration
// (up to 12 variables) and (b) a plain recursive DPLL with unit propagation
// (up to 20 variables). Every kSat answer must additionally carry a model
// that satisfies the original clause list — the solver is never trusted
// about its own verdict.
#include "sat/cnf.h"
#include "sat/solver.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

namespace merced::sat {
namespace {

// ---------------------------------------------------------------- oracles

/// Exhaustive truth-table satisfiability (<= ~20 vars practical up to 12
/// here).
bool truth_table_sat(const Cnf& cnf) {
  const std::size_t n = cnf.num_vars;
  std::vector<bool> assignment(n, false);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m) {
    for (std::size_t v = 0; v < n; ++v) assignment[v] = ((m >> v) & 1) != 0;
    if (cnf_satisfied(cnf, assignment)) return true;
  }
  return false;
}

/// Recursive DPLL with unit propagation — structurally unrelated to the
/// CDCL implementation, so a shared bug is unlikely.
bool dpll_sat(std::vector<Clause> clauses, std::vector<std::int8_t>& assign) {
  // Unit propagation to fixpoint.
  for (;;) {
    bool changed = false;
    for (const Clause& c : clauses) {
      std::size_t unassigned = 0;
      Lit unit = kNoLit;
      bool satisfied = false;
      for (const Lit l : c) {
        const std::int8_t a = assign[l.var()];
        if (a == -1) {
          ++unassigned;
          unit = l;
        } else if ((a != 0) != l.negated()) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (unassigned == 0) return false;  // falsified clause
      if (unassigned == 1) {
        assign[unit.var()] = unit.negated() ? 0 : 1;
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Pick the first unassigned variable appearing in an unsatisfied clause.
  for (const Clause& c : clauses) {
    bool satisfied = false;
    for (const Lit l : c) {
      const std::int8_t a = assign[l.var()];
      if (a != -1 && (a != 0) != l.negated()) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    for (const Lit l : c) {
      if (assign[l.var()] != -1) continue;
      for (const std::int8_t value : {std::int8_t{1}, std::int8_t{0}}) {
        std::vector<std::int8_t> branch = assign;
        branch[l.var()] = value;
        if (dpll_sat(clauses, branch)) {
          assign = std::move(branch);
          return true;
        }
      }
      return false;
    }
  }
  return true;  // every clause satisfied
}

bool dpll_sat(const Cnf& cnf) {
  std::vector<std::int8_t> assign(cnf.num_vars, -1);
  return dpll_sat(cnf.clauses, assign);
}

// ------------------------------------------------------------ generators

Cnf random_cnf(std::mt19937& rng, std::size_t num_vars, std::size_t num_clauses,
               std::size_t max_width) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  std::uniform_int_distribution<std::size_t> width(1, max_width);
  std::uniform_int_distribution<Var> var(0, static_cast<Var>(num_vars - 1));
  std::bernoulli_distribution sign(0.5);
  for (std::size_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    const std::size_t w = width(rng);
    for (std::size_t i = 0; i < w; ++i) clause.push_back(make_lit(var(rng), sign(rng)));
    cnf.add(std::move(clause));
  }
  return cnf;
}

/// Runs the CDCL solver on `cnf` and checks the verdict against `expected`;
/// on kSat also checks the extracted model against the original clauses.
void check_against(const Cnf& cnf, bool expected, const char* context) {
  Solver solver;
  for (std::size_t v = 0; v < cnf.num_vars; ++v) solver.new_var();
  bool early_unsat = false;
  for (const Clause& c : cnf.clauses) {
    if (!solver.add_clause(c)) {
      early_unsat = true;
      break;
    }
  }
  if (early_unsat) {
    ASSERT_FALSE(expected) << context << ": add_clause reported UNSAT on a SAT formula";
    return;
  }
  const Verdict verdict = solver.solve();
  ASSERT_NE(verdict, Verdict::kUnknown) << context << ": unbounded solve returned kUnknown";
  ASSERT_EQ(verdict == Verdict::kSat, expected) << context << ": verdict disagrees with oracle";
  if (verdict == Verdict::kSat) {
    std::vector<bool> model(cnf.num_vars);
    for (std::size_t v = 0; v < cnf.num_vars; ++v) {
      model[v] = solver.model_value(static_cast<Var>(v));
    }
    ASSERT_TRUE(cnf_satisfied(cnf, model)) << context << ": kSat model violates a clause";
  }
}

// ----------------------------------------------------------------- tests

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver solver;
  EXPECT_EQ(solver.solve(), Verdict::kSat);
}

TEST(SatSolver, SingleUnitAndItsNegationIsUnsat) {
  Solver solver;
  const Var v = solver.new_var();
  EXPECT_TRUE(solver.add_clause({make_lit(v)}));
  EXPECT_FALSE(solver.add_clause({~make_lit(v)}));
  EXPECT_EQ(solver.solve(), Verdict::kUnsat);
}

TEST(SatSolver, UnitPropagationAloneSettlesChains) {
  // x0, x0→x1, x1→x2, ..., a pure implication chain: zero decisions needed.
  Solver solver;
  constexpr std::size_t kChain = 64;
  std::vector<Var> vars;
  for (std::size_t i = 0; i < kChain; ++i) vars.push_back(solver.new_var());
  ASSERT_TRUE(solver.add_clause({make_lit(vars[0])}));
  for (std::size_t i = 0; i + 1 < kChain; ++i) {
    ASSERT_TRUE(solver.add_clause({~make_lit(vars[i]), make_lit(vars[i + 1])}));
  }
  EXPECT_EQ(solver.solve(), Verdict::kSat);
  EXPECT_EQ(solver.stats().decisions, 0u) << "implication chain needed decisions";
  for (const Var v : vars) EXPECT_TRUE(solver.model_value(v));
}

TEST(SatSolver, PigeonholeTwoIntoOneIsUnsat) {
  // Two pigeons, one hole: p0h0, p1h0, ¬p0h0 ∨ ¬p1h0 — with both pigeons
  // forced somewhere. Classic tiny UNSAT core exercising conflict analysis.
  Solver solver;
  const Var p0 = solver.new_var();
  const Var p1 = solver.new_var();
  ASSERT_TRUE(solver.add_clause({make_lit(p0)}));
  ASSERT_TRUE(solver.add_clause({make_lit(p1)}));
  solver.add_clause({~make_lit(p0), ~make_lit(p1)});
  EXPECT_EQ(solver.solve(), Verdict::kUnsat);
}

TEST(SatSolver, RepeatedSolveIsStable) {
  // solve() must be repeatable and tolerate clause additions in between.
  Solver solver;
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  ASSERT_TRUE(solver.add_clause({make_lit(a), make_lit(b)}));
  EXPECT_EQ(solver.solve(), Verdict::kSat);
  EXPECT_EQ(solver.solve(), Verdict::kSat);
  ASSERT_TRUE(solver.add_clause({~make_lit(a)}));
  EXPECT_EQ(solver.solve(), Verdict::kSat);
  EXPECT_TRUE(solver.model_value(b));
  solver.add_clause({~make_lit(b)});
  EXPECT_EQ(solver.solve(), Verdict::kUnsat);
  EXPECT_EQ(solver.solve(), Verdict::kUnsat);  // sticky after UNSAT
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  // A hard random 3-SAT instance near the phase transition with a one-
  // conflict budget must come back kUnknown, not wrong.
  std::mt19937 rng(7);
  const Cnf cnf = random_cnf(rng, 30, 128, 3);
  Solver solver;
  for (std::size_t v = 0; v < cnf.num_vars; ++v) solver.new_var();
  bool open = true;
  for (const Clause& c : cnf.clauses) open = open && solver.add_clause(c);
  if (open) {
    const Verdict v = solver.solve(1);
    if (v == Verdict::kUnknown) {
      // Budget exhausted mid-search; an unbounded re-solve must finish and
      // agree with the oracle.
      EXPECT_EQ(solver.solve() == Verdict::kSat, dpll_sat(cnf));
    }
  }
}

TEST(SatSolver, AgreesWithTruthTableOnThousandsOfSmallCnfs) {
  std::mt19937 rng(0x5eed);
  std::uniform_int_distribution<std::size_t> vars(1, 12);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = vars(rng);
    std::uniform_int_distribution<std::size_t> clauses(1, 3 * n + 2);
    const Cnf cnf = random_cnf(rng, n, clauses(rng), std::min<std::size_t>(n, 4));
    check_against(cnf, truth_table_sat(cnf),
                  ("truth-table iter " + std::to_string(iter)).c_str());
  }
}

TEST(SatSolver, AgreesWithDpllOnWiderCnfs) {
  std::mt19937 rng(0xcafe);
  std::uniform_int_distribution<std::size_t> vars(8, 20);
  for (int iter = 0; iter < 1000; ++iter) {
    const std::size_t n = vars(rng);
    // ~4.3 clauses/var straddles the 3-SAT phase transition, where random
    // instances are hardest and both verdicts occur.
    std::uniform_int_distribution<std::size_t> clauses(2 * n, 5 * n);
    const Cnf cnf = random_cnf(rng, n, clauses(rng), 3);
    check_against(cnf, dpll_sat(cnf), ("dpll iter " + std::to_string(iter)).c_str());
  }
}

TEST(SatSolver, UnsatCoreFamilies) {
  // Parametric XOR-chain UNSAT cores: x1⊕x2⊕...⊕xk = 0 and = 1 encoded as
  // CNF simultaneously. Every instance is UNSAT and forces real resolution
  // (no unit clause exists initially).
  for (std::size_t k = 2; k <= 10; ++k) {
    Cnf cnf;
    for (std::size_t i = 0; i < k; ++i) cnf.new_var();
    // chain variables c_i = x0 ⊕ ... ⊕ xi
    std::vector<Var> c;
    c.push_back(0);
    for (std::size_t i = 1; i < k; ++i) {
      const Var ci = cnf.new_var();
      const Lit a = make_lit(c.back());
      const Lit b = make_lit(static_cast<Var>(i));
      const Lit y = make_lit(ci);
      cnf.add({~y, a, b});
      cnf.add({~y, ~a, ~b});
      cnf.add({y, ~a, b});
      cnf.add({y, a, ~b});
      c.push_back(ci);
    }
    cnf.add({make_lit(c.back())});   // parity = 1
    cnf.add({~make_lit(c.back())});  // parity = 0
    check_against(cnf, false, ("xor-core k=" + std::to_string(k)).c_str());
  }
}

TEST(SatSolver, ModelSurvivesTrailUnwindAcrossAddClause) {
  // Regression guard: model_value must answer from saved phases after a
  // post-solve add_clause unwound the trail.
  Solver solver;
  const Var a = solver.new_var();
  const Var b = solver.new_var();
  ASSERT_TRUE(solver.add_clause({make_lit(a)}));
  ASSERT_TRUE(solver.add_clause({~make_lit(a), make_lit(b)}));
  ASSERT_EQ(solver.solve(), Verdict::kSat);
  const Var c = solver.new_var();
  ASSERT_TRUE(solver.add_clause({make_lit(c), ~make_lit(c), make_lit(a)}));  // tautology
  EXPECT_TRUE(solver.model_value(a));
  EXPECT_TRUE(solver.model_value(b));
}

}  // namespace
}  // namespace merced::sat
