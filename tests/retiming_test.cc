#include <gtest/gtest.h>

#include <random>

#include "circuits/registry.h"
#include "circuits/s27.h"
#include "flow/saturate_network.h"
#include "graph/circuit_graph.h"
#include "graph/scc.h"
#include "netlist/bench_io.h"
#include "partition/assign_cbit.h"
#include "partition/make_group.h"
#include "retiming/cut_retiming.h"
#include "retiming/retime_graph.h"
#include "retiming/retimed_netlist.h"
#include "sim/simulator.h"

namespace merced {
namespace {

// A 3-stage pipeline with a feedback loop:
//   a -> g1 -> q1 -> g2 -> q2 -> g3 -> y,  with g3 -> qf -> g1.
Netlist pipeline_with_loop() {
  return parse_bench(
      "INPUT(a)\nOUTPUT(y)\n"
      "g1 = AND(a, qf)\n"
      "q1 = DFF(g1)\n"
      "g2 = NOT(q1)\n"
      "q2 = DFF(g2)\n"
      "g3 = NAND(q2, a)\n"
      "qf = DFF(g3)\n"
      "y = BUF(g3)\n");
}

// --------------------------------------------------------- retime graph ---

TEST(RetimeGraphTest, CollapsesDffChainsIntoWeights) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nOUTPUT(y)\n"
      "g = NOT(a)\nq1 = DFF(g)\nq2 = DFF(q1)\ny = BUF(q2)\n");
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  // Vertices: a, g, y (registers are edge weights).
  EXPECT_EQ(rg.num_vertices(), 3u);
  bool found = false;
  for (const REdge& e : rg.edges()) {
    if (rg.node_of(e.from) == nl.find("g") && rg.node_of(e.to) == nl.find("y")) {
      EXPECT_EQ(e.weight, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(rg.total_registers(), 2);
}

TEST(RetimeGraphTest, S27WeightsSumToUsedDffs) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  // Each s27 DFF drives exactly one gate sink; no DFF chains.
  EXPECT_EQ(rg.total_registers(), 3);
  for (const REdge& e : rg.edges()) EXPECT_LE(e.weight, 1);
}

TEST(RetimeGraphTest, ZeroRetimingIsLegal) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  const Retiming zero(rg.num_vertices(), 0);
  EXPECT_TRUE(rg.is_legal(zero));
}

TEST(RetimeGraphTest, Eq1PathRegisterChange) {
  // Lemma 1: f_rho(p) = f(p) + rho(v_n) - rho(v_0) for any path.
  const Netlist nl = pipeline_with_loop();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Retiming rho(rg.num_vertices());
    for (auto& v : rho) v = static_cast<std::int32_t>(rng() % 5) - 2;
    // Random walk of up to 4 edges.
    std::vector<std::size_t> path;
    std::size_t e0 = rng() % rg.edges().size();
    path.push_back(e0);
    for (int h = 0; h < 3; ++h) {
      const RVertexId tail = rg.edges()[path.back()].to;
      std::vector<std::size_t> nexts;
      for (std::size_t i = 0; i < rg.edges().size(); ++i) {
        if (rg.edges()[i].from == tail) nexts.push_back(i);
      }
      if (nexts.empty()) break;
      path.push_back(nexts[rng() % nexts.size()]);
    }
    const auto before = rg.path_registers(path);
    const auto after = rg.path_registers(path, &rho);
    const RVertexId v0 = rg.edges()[path.front()].from;
    const RVertexId vn = rg.edges()[path.back()].to;
    EXPECT_EQ(after, before + rho[vn] - rho[v0]);
  }
}

TEST(RetimeGraphTest, Eq2CycleInvariance) {
  // Corollary 2: register count of every cycle is retiming-invariant.
  const Netlist nl = pipeline_with_loop();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  // Find the cycle g1 -> q1 -> g2 -> q2 -> g3 -> qf -> g1 as edge indices.
  auto edge_between = [&](std::string_view a, std::string_view b) -> std::size_t {
    for (std::size_t i = 0; i < rg.edges().size(); ++i) {
      if (rg.node_of(rg.edges()[i].from) == nl.find(a) &&
          rg.node_of(rg.edges()[i].to) == nl.find(b)) {
        return i;
      }
    }
    ADD_FAILURE() << "no edge " << a << "->" << b;
    return 0;
  };
  const std::vector<std::size_t> cycle = {edge_between("g1", "g2"),
                                          edge_between("g2", "g3"),
                                          edge_between("g3", "g1")};
  EXPECT_EQ(rg.path_registers(cycle), 3);
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    Retiming rho(rg.num_vertices());
    for (auto& v : rho) v = static_cast<std::int32_t>(rng() % 7) - 3;
    EXPECT_EQ(rg.path_registers(cycle, &rho), 3);
  }
}

TEST(RetimeGraphTest, IllegalRetimingDetected) {
  const Netlist nl = pipeline_with_loop();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  // Pull 2 registers onto g1's incoming edges: some edge must go negative.
  Retiming rho(rg.num_vertices(), 0);
  rho[rg.vertex_of(nl.find("g1"))] = 2;
  EXPECT_FALSE(rg.is_legal(rho));
}

TEST(RetimeGraphTest, PathValidation) {
  const Netlist nl = pipeline_with_loop();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  // Two edges that do not connect must be rejected.
  std::size_t e1 = 0, e2 = 0;
  for (std::size_t i = 0; i < rg.edges().size(); ++i) {
    for (std::size_t j = 0; j < rg.edges().size(); ++j) {
      if (rg.edges()[i].to != rg.edges()[j].from) {
        e1 = i;
        e2 = j;
      }
    }
  }
  const std::vector<std::size_t> bad = {e1, e2};
  EXPECT_THROW(rg.path_registers(bad), std::invalid_argument);
}

// --------------------------------------------------------- cut planning ---

struct PlannedCut {
  Netlist netlist;
  CircuitGraph graph;
  SccInfo sccs;
  RetimeGraph rgraph;
  Clustering clustering;
  std::vector<NetId> cuts;
  CutRetimingPlan plan;

  PlannedCut(Netlist nl, std::size_t lk, std::uint64_t seed = 3)
      : netlist(std::move(nl)),
        graph(netlist),
        sccs(find_sccs(graph)),
        rgraph(graph),
        clustering([&] {
          SaturateParams p;
          p.seed = seed;
          const auto sat = saturate_network(graph, p);
          MakeGroupParams mg;
          mg.lk = lk;
          auto groups = make_group(graph, sccs, sat, mg);
          return assign_cbit(graph, groups.clustering, lk).partitions;
        }()),
        cuts(cut_nets(graph, clustering)),
        plan(plan_cut_retiming(graph, rgraph, sccs, cuts, clustering)) {}
};

TEST(CutRetimingTest, PlanCoversAllCutsExactlyOnce) {
  PlannedCut p(make_s27(), 3);
  EXPECT_EQ(p.plan.retimable.size() + p.plan.multiplexed.size(), p.cuts.size());
  for (NetId n : p.plan.retimable) {
    EXPECT_TRUE(std::binary_search(p.cuts.begin(), p.cuts.end(), n));
    EXPECT_FALSE(std::binary_search(p.plan.multiplexed.begin(),
                                    p.plan.multiplexed.end(), n));
  }
}

TEST(CutRetimingTest, RhoIsLegal) {
  PlannedCut p(make_s27(), 3);
  ASSERT_EQ(p.plan.rho.size(), p.rgraph.num_vertices());
  EXPECT_TRUE(p.rgraph.is_legal(p.plan.rho));
}

TEST(CutRetimingTest, RetimableCutsGetRegisters) {
  // Every crossing branch of every retimable cut net must carry >= 1
  // register under the planned rho.
  PlannedCut p(make_s27(), 3);
  std::set<NetId> retimable(p.plan.retimable.begin(), p.plan.retimable.end());
  for (const REdge& e : p.rgraph.edges()) {
    if (e.weight != 0 || !retimable.contains(e.source_net)) continue;
    const NodeId from = p.rgraph.node_of(e.from);
    const NodeId to = p.rgraph.node_of(e.to);
    if (p.clustering.cluster_of[from] != p.clustering.cluster_of[to]) {
      EXPECT_GE(p.rgraph.retimed_weight(e, p.plan.rho), 1)
          << "cut net " << p.netlist.gate(e.source_net).name;
    }
  }
}

TEST(CutRetimingTest, AcyclicCutsAreAlwaysRetimable) {
  // A pipeline without feedback: every cut is retimable (Eq. 1 lets
  // registers be added freely on non-cyclic paths).
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "g1 = AND(a, b)\ng2 = NOT(g1)\nq = DFF(g2)\ng3 = NAND(q, a)\ny = NOT(g3)\n");
  PlannedCut p(parse_bench(write_bench(nl), "acyclic"), 2, 5);
  EXPECT_TRUE(p.plan.multiplexed.empty());
  EXPECT_EQ(p.plan.scc_aggregate_demotions, 0u);
}

TEST(CutRetimingTest, TightLoopForcesMultiplexing) {
  // One register on the loop, two gates clustered apart => 2+ cuts on a
  // 1-register cycle: at least one cut must be multiplexed.
  const Netlist nl = parse_bench(
      "INPUT(a)\nOUTPUT(y)\n"
      "g1 = AND(a, q)\ng2 = NOT(g1)\ng3 = BUF(g2)\nq = DFF(g3)\ny = BUF(g2)\n");
  const CircuitGraph g(nl);
  const SccInfo sccs = find_sccs(g);
  const RetimeGraph rg(g);
  // Hand-build clusters: {g1}, {g2}, {g3,q} -> cuts on nets g1 and g2.
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters = {{nl.find("g1")}, {nl.find("g2"), nl.find("y")},
                {nl.find("g3"), nl.find("q")}};
  for (std::size_t i = 0; i < c.clusters.size(); ++i) {
    for (NodeId v : c.clusters[i]) c.cluster_of[v] = static_cast<std::int32_t>(i);
  }
  const auto cuts = cut_nets(g, c);
  ASSERT_EQ(cuts.size(), 2u);
  const CutRetimingPlan plan = plan_cut_retiming(g, rg, sccs, cuts, c);
  // Two cuts on a 1-register cycle: at least one must be multiplexed
  // (Eq. 2). The greedy planner may conservatively demote both.
  EXPECT_GE(plan.multiplexed.size(), 1u);
  EXPECT_EQ(plan.retimable.size() + plan.multiplexed.size(), 2u);
  EXPECT_TRUE(rg.is_legal(plan.rho));
}

// ------------------------------------------------- apply + initial state ---

TEST(ApplyRetimingTest, StructurePreservesGateAndRegisterInvariants) {
  const Netlist nl = pipeline_with_loop();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  Retiming rho(rg.num_vertices(), 0);
  rho[rg.vertex_of(nl.find("g2"))] = -1;  // move q1 forward through g2
  ASSERT_TRUE(rg.is_legal(rho));
  const RetimedCircuit rt = apply_retiming(g, rg, rho);
  // Same combinational cells; register count preserved on each cycle.
  EXPECT_EQ(rt.netlist.inputs().size(), nl.inputs().size());
  EXPECT_EQ(rt.netlist.outputs().size(), nl.outputs().size());
  std::size_t comb_before = 0, comb_after = 0;
  for (GateId i = 0; i < nl.size(); ++i) {
    if (is_combinational(nl.gate(i).type)) ++comb_before;
  }
  for (GateId i = 0; i < rt.netlist.size(); ++i) {
    if (is_combinational(rt.netlist.gate(i).type)) ++comb_after;
  }
  EXPECT_EQ(comb_before, comb_after);
}

void expect_equivalent_after_warmup(const Netlist& original, const RetimedCircuit& rt,
                                    std::size_t warmup_len, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::size_t n_in = original.inputs().size();
  std::vector<std::vector<bool>> warmup(warmup_len, std::vector<bool>(n_in));
  for (auto& v : warmup) {
    for (std::size_t i = 0; i < n_in; ++i) v[i] = rng() & 1;
  }
  const std::vector<bool> init(original.dffs().size(), false);
  const std::vector<bool> rt_state =
      compute_retimed_initial_state(original, rt, init, warmup);

  Simulator orig(original);
  orig.set_state(init);
  for (const auto& v : warmup) orig.step(v);
  Simulator retimed(rt.netlist);
  retimed.set_state(rt_state);

  for (int cycle = 0; cycle < 64; ++cycle) {
    std::vector<bool> in(n_in);
    for (std::size_t i = 0; i < n_in; ++i) in[i] = rng() & 1;
    orig.step(in);
    retimed.step(in);
    EXPECT_EQ(orig.output_values(), retimed.output_values()) << "cycle " << cycle;
  }
}

TEST(ApplyRetimingTest, FunctionalEquivalenceSingleMove) {
  const Netlist nl = pipeline_with_loop();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  Retiming rho(rg.num_vertices(), 0);
  rho[rg.vertex_of(nl.find("g2"))] = -1;
  const RetimedCircuit rt = apply_retiming(g, rg, rho);
  expect_equivalent_after_warmup(nl, rt, 8, 17);
}

TEST(ApplyRetimingTest, FunctionalEquivalenceRandomLegalRetimings) {
  const Netlist nl = pipeline_with_loop();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  std::mt19937_64 rng(23);
  // I/O vertices stay at label 0 (their signals cannot time-shift).
  std::vector<bool> io(rg.num_vertices(), false);
  for (GateId id : nl.inputs()) io[rg.vertex_of(id)] = true;
  for (GateId id : nl.outputs()) {
    if (!is_sequential(nl.gate(id).type)) io[rg.vertex_of(id)] = true;
  }
  int accepted = 0;
  for (int trial = 0; trial < 200 && accepted < 10; ++trial) {
    Retiming rho(rg.num_vertices());
    for (RVertexId v = 0; v < rg.num_vertices(); ++v) {
      rho[v] = io[v] ? 0 : static_cast<std::int32_t>(rng() % 3) - 1;
    }
    if (!rg.is_legal(rho)) continue;
    ++accepted;
    const RetimedCircuit rt = apply_retiming(g, rg, rho);
    expect_equivalent_after_warmup(nl, rt, 8, 1000 + trial);
  }
  EXPECT_GE(accepted, 3) << "random search found too few legal retimings";
}

TEST(ApplyRetimingTest, S27PlannedRetimingIsEquivalent) {
  // End-to-end: the cut-retiming plan applied to s27 keeps the machine
  // functionally equivalent (after warm-up).
  PlannedCut p(make_s27(), 3);
  const RetimedCircuit rt = apply_retiming(p.graph, p.rgraph, p.plan.rho);
  expect_equivalent_after_warmup(p.netlist, rt, 12, 4242);
}

TEST(ApplyRetimingTest, InitialStateNeedsEnoughWarmup) {
  // A register at depth k from a source with label rho needs warm-up of at
  // least k + rho cycles; an empty warm-up cannot seed any register.
  const Netlist nl = pipeline_with_loop();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  const Retiming rho(rg.num_vertices(), 0);  // identity retiming
  const RetimedCircuit rt = apply_retiming(g, rg, rho);
  ASSERT_FALSE(rt.origins.empty());
  const std::vector<bool> init(nl.dffs().size(), false);
  EXPECT_THROW(compute_retimed_initial_state(nl, rt, init, {}),
               std::invalid_argument);
}

TEST(ApplyRetimingTest, RejectsIllegalRho) {
  const Netlist nl = pipeline_with_loop();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  Retiming rho(rg.num_vertices(), 0);
  rho[rg.vertex_of(nl.find("g1"))] = 5;
  ASSERT_FALSE(rg.is_legal(rho));
  EXPECT_THROW(apply_retiming(g, rg, rho), std::invalid_argument);
}

}  // namespace
}  // namespace merced
