#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "runtime/work_steal.h"

namespace merced {
namespace {

TEST(ResolveJobsTest, ZeroMeansHardware) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (std::size_t jobs : {2u, 4u, 8u}) {
    ThreadPool pool(jobs);
    EXPECT_EQ(pool.size(), jobs);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, EmptyLoopIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossLoops) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  auto boom = [&] {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 37) throw std::runtime_error("boom");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  // Pool must still be usable after an exceptional loop.
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](std::size_t) { total++; });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  for (std::size_t jobs : {1u, 3u, 8u}) {
    ThreadPool pool(jobs);
    const auto out =
        parallel_map<std::size_t>(pool, 257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPoolStatsTest, FreshPoolHasZeroedSlots) {
  ThreadPool pool(4);
  const std::vector<WorkerStats> s = pool.stats();
  ASSERT_EQ(s.size(), 4u);
  for (const WorkerStats& w : s) {
    EXPECT_EQ(w.tasks, 0u);
    EXPECT_EQ(w.busy_seconds, 0.0);
    EXPECT_EQ(w.idle_seconds, 0.0);
  }
}

TEST(ThreadPoolStatsTest, TasksSumToLoopSizesAcrossRuns) {
  ThreadPool pool(4);
  pool.parallel_for(100, [](std::size_t) {});
  pool.parallel_for(23, [](std::size_t) {});
  std::uint64_t total = 0;
  for (const WorkerStats& w : pool.stats()) total += w.tasks;
  EXPECT_EQ(total, 123u);
}

TEST(ThreadPoolStatsTest, InlinePoolChargesTheCallerSlot) {
  ThreadPool pool(1);
  pool.parallel_for(42, [](std::size_t) {});
  const std::vector<WorkerStats> s = pool.stats();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].tasks, 42u);
  // The caller slot never parks, so it can accrue busy time but never idle.
  EXPECT_EQ(s[0].idle_seconds, 0.0);
}

TEST(ThreadPoolStatsTest, BusyAndIdleTimeAccrue) {
  ThreadPool pool(3);
  const auto spin = [](std::size_t) {
    const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  pool.parallel_for(9, spin);
  // Workers park between jobs; the parked interval is charged as idle time
  // when they wake for the next loop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.parallel_for(9, spin);

  const std::vector<WorkerStats> s = pool.stats();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].idle_seconds, 0.0);
  double busy = 0;
  double worker_idle = 0;
  std::uint64_t tasks = 0;
  for (const WorkerStats& w : s) {
    busy += w.busy_seconds;
    tasks += w.tasks;
  }
  for (std::size_t t = 1; t < s.size(); ++t) worker_idle += s[t].idle_seconds;
  EXPECT_EQ(tasks, 18u);
  // 18 indices x ~2 ms spin each; allow generous scheduling slop.
  EXPECT_GT(busy, 0.018);
  EXPECT_GT(worker_idle, 0.010);
}

TEST(ThreadPoolStatsTest, ResetStatsZeroesEverySlot) {
  ThreadPool pool(4);
  pool.parallel_for(64, [](std::size_t) {});
  pool.reset_stats();
  for (const WorkerStats& w : pool.stats()) {
    EXPECT_EQ(w.tasks, 0u);
    EXPECT_EQ(w.busy_seconds, 0.0);
    EXPECT_EQ(w.idle_seconds, 0.0);
  }
  // Reset-between-runs: the next measured run starts from zero.
  pool.parallel_for(10, [](std::size_t) {});
  std::uint64_t total = 0;
  for (const WorkerStats& w : pool.stats()) total += w.tasks;
  EXPECT_EQ(total, 10u);
}

TEST(ThreadPoolTest, ParallelMapZeroTasksReturnsEmpty) {
  ThreadPool pool(4);
  const auto out = parallel_map<int>(pool, 0, [](std::size_t) -> int {
    ADD_FAILURE() << "body must not run for n == 0";
    return 0;
  });
  EXPECT_TRUE(out.empty());
  // The pool is still usable afterwards.
  EXPECT_EQ(parallel_map<int>(pool, 3, [](std::size_t i) { return int(i); }),
            (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPoolTest, MoreJobsThanTasks) {
  // 8 workers, 3 indices: every index still runs exactly once and lands in
  // its own slot; the 5 idle workers must not deadlock the join.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(parallel_map<std::size_t>(pool, 1, [](std::size_t i) { return i + 7; }),
            (std::vector<std::size_t>{7}));
}

TEST(ThreadPoolTest, ExceptionPropagatesOutOfParallelMap) {
  ThreadPool pool(4);
  try {
    (void)parallel_map<int>(pool, 100, [](std::size_t i) -> int {
      if (i == 42) throw std::runtime_error("map body failed at 42");
      return static_cast<int>(i);
    });
    FAIL() << "expected the body's exception to escape parallel_map";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  }
  // The pool survives the failed loop and runs the next one normally.
  const auto ok = parallel_map<int>(pool, 5, [](std::size_t i) { return int(i) * 2; });
  EXPECT_EQ(ok, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(WorkStealTest, EveryTaskRunsExactlyOnceAcrossPoolSizes) {
  for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(jobs);
    std::vector<std::atomic<int>> hits(503);
    const StealStats stats =
        parallel_for_stealing(pool, hits.size(), [&](std::size_t task, std::size_t slot) {
          ASSERT_LT(slot, pool.size());
          hits[task].fetch_add(1, std::memory_order_relaxed);
        });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_EQ(stats.tasks_run, hits.size());
    EXPECT_LE(stats.tasks_stolen, stats.tasks_run);
    if (jobs == 1) EXPECT_EQ(stats.tasks_stolen, 0u);
  }
}

TEST(WorkStealTest, SlotTasksNeverRunConcurrently) {
  // The worker_slot contract: two tasks reporting the same slot are never
  // in flight at once, which is what lets callers keep per-slot scratch
  // state without a lock. Entering a slot that is already occupied trips
  // the flag; TSan (CI) would additionally flag the unsynchronized vector.
  ThreadPool pool(8);
  std::vector<std::atomic<bool>> occupied(pool.size());
  std::atomic<bool> violated{false};
  (void)parallel_for_stealing(pool, 400, [&](std::size_t, std::size_t slot) {
    if (occupied[slot].exchange(true, std::memory_order_acquire)) {
      violated.store(true, std::memory_order_relaxed);
    }
    occupied[slot].store(false, std::memory_order_release);
  });
  EXPECT_FALSE(violated.load());
}

TEST(WorkStealTest, ZeroTasksIsNoop) {
  ThreadPool pool(4);
  bool ran = false;
  const StealStats stats =
      parallel_for_stealing(pool, 0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(stats.tasks_run, 0u);
}

TEST(WorkStealTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  auto boom = [&] {
    (void)parallel_for_stealing(pool, 200, [&](std::size_t task, std::size_t) {
      if (task == 111) throw std::runtime_error("stolen boom");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  std::atomic<int> total{0};
  (void)parallel_for_stealing(pool, 10, [&](std::size_t, std::size_t) { total++; });
  EXPECT_EQ(total.load(), 10);
}

TEST(WorkStealTest, StealStatsCountTerminalScansAsFailures) {
  // Every stealing run ends with each idle worker scanning all victims and
  // coming back empty-handed at least once (the termination path), so
  // steal_failures is nonzero whenever steal_attempts is — and both are
  // diagnostics, never part of the determinism contract.
  ThreadPool pool(4);
  const StealStats stats =
      parallel_for_stealing(pool, 64, [](std::size_t, std::size_t) {});
  EXPECT_EQ(stats.tasks_run, 64u);
  if (stats.steal_attempts > 0) {
    EXPECT_GE(stats.steal_failures, 1u);
  }
  // One successful scan loots a batch, so tasks_stolen is not bounded by
  // steal_attempts — but failures are a subset of attempts by definition.
  EXPECT_LE(stats.steal_failures, stats.steal_attempts);

  // operator+= accumulates every field, including the new one.
  StealStats sum;
  sum += stats;
  sum += stats;
  EXPECT_EQ(sum.tasks_run, 2 * stats.tasks_run);
  EXPECT_EQ(sum.steal_failures, 2 * stats.steal_failures);
}

TEST(WorkStealTest, StealStatsFlushToObsCounters) {
  obs::disable();
  obs::reset();
  obs::enable();
  StealStats stats;
  {
    ThreadPool pool(2);
    stats = parallel_for_stealing(pool, 128, [](std::size_t, std::size_t) {});
  }
  obs::disable();
  EXPECT_EQ(obs::counter_value(obs::Counter::kSchedTasksRun), 128u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kSchedTasksStolen), stats.tasks_stolen);
  EXPECT_EQ(obs::counter_value(obs::Counter::kSchedStealAttempts),
            stats.steal_attempts);
  EXPECT_EQ(obs::counter_value(obs::Counter::kSchedStealFailures),
            stats.steal_failures);
  // The destroyed pool flushed its per-worker busy time: 128 tasks ran, so
  // some nonzero wall time was spent inside bodies.
  EXPECT_GT(obs::counter_value(obs::Counter::kPoolBusyNs), 0u);
  obs::reset();
}

TEST(WorkStealTest, IndexAddressedResultsAreOrderIndependent) {
  // The determinism contract: results land in per-task slots, so the fold
  // in task order is bit-identical for any pool size and any interleaving.
  auto reduce_with = [](std::size_t jobs) {
    ThreadPool pool(jobs);
    std::vector<double> parts(1000);
    (void)parallel_for_stealing(pool, parts.size(), [&](std::size_t task, std::size_t) {
      parts[task] = 1.0 / static_cast<double>(task + 1);
    });
    return std::accumulate(parts.begin(), parts.end(), 0.0);
  };
  const double serial = reduce_with(1);
  EXPECT_EQ(serial, reduce_with(3));
  EXPECT_EQ(serial, reduce_with(8));
}

TEST(ThreadPoolTest, DeterministicReductionAcrossThreadCounts) {
  // Folding a parallel_map result in index order must be bit-identical for
  // any pool size — the determinism contract every caller relies on.
  auto reduce_with = [](std::size_t jobs) {
    ThreadPool pool(jobs);
    const auto parts = parallel_map<double>(
        pool, 1000, [](std::size_t i) { return 1.0 / static_cast<double>(i + 1); });
    return std::accumulate(parts.begin(), parts.end(), 0.0);
  };
  const double serial = reduce_with(1);
  EXPECT_EQ(serial, reduce_with(2));
  EXPECT_EQ(serial, reduce_with(8));
}

}  // namespace
}  // namespace merced
