#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuits/registry.h"
#include "circuits/s27.h"
#include "flow/saturate_network.h"
#include "graph/circuit_graph.h"
#include "graph/scc.h"

namespace merced {
namespace {

SaturationResult run_s27(std::uint64_t seed = 1,
                         SaturateParams::SourcePolicy sp =
                             SaturateParams::SourcePolicy::kUnderVisited,
                         SaturateParams::VisitPolicy vp =
                             SaturateParams::VisitPolicy::kTreeNodes) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  SaturateParams p;
  p.seed = seed;
  p.source_policy = sp;
  p.visit_policy = vp;
  return saturate_network(g, p);
}

TEST(SaturateNetworkTest, EveryNodeReachesMinVisit) {
  const SaturationResult r = run_s27();
  for (std::uint32_t v : r.visit) EXPECT_GT(v, 20u);
}

TEST(SaturateNetworkTest, DistanceIsExpOfFlow) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  SaturateParams p;
  const SaturationResult r = saturate_network(g, p);
  for (NetId n = 0; n < g.num_nets(); ++n) {
    if (r.flow[n] == 0.0) {
      EXPECT_DOUBLE_EQ(r.distance[n], 1.0);  // initial d(e) = 1
    } else {
      EXPECT_NEAR(r.distance[n], std::exp(p.alpha * r.flow[n] / p.capacity), 1e-9);
    }
  }
}

TEST(SaturateNetworkTest, DeterministicInSeed) {
  const SaturationResult a = run_s27(42);
  const SaturationResult b = run_s27(42);
  EXPECT_EQ(a.flow, b.flow);
  EXPECT_EQ(a.iterations, b.iterations);
  const SaturationResult c = run_s27(43);
  EXPECT_NE(a.flow, c.flow);  // overwhelmingly likely
}

TEST(SaturateNetworkTest, SccNetsAbsorbMoreFlow) {
  // Paper Fig. 5: nets in SCCs are the most congested. Compare the mean
  // flow of nets driven inside SCCs vs outside (PI nets excluded).
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  const SccInfo sccs = find_sccs(g);
  const SaturationResult r = run_s27(7);
  double scc_sum = 0, scc_n = 0, other_sum = 0, other_n = 0;
  for (NetId n = 0; n < g.num_nets(); ++n) {
    if (g.is_pi(g.driver(n)) || g.net_branches(n).empty()) continue;
    if (sccs.component_of[g.driver(n)] != kNoScc) {
      scc_sum += r.flow[n];
      ++scc_n;
    } else {
      other_sum += r.flow[n];
      ++other_n;
    }
  }
  ASSERT_GT(scc_n, 0);
  ASSERT_GT(other_n, 0);
  EXPECT_GT(scc_sum / scc_n, other_sum / other_n);
}

TEST(SaturateNetworkTest, SourceOnlyPolicyCountsSources) {
  const SaturationResult r =
      run_s27(1, SaturateParams::SourcePolicy::kUnderVisited,
              SaturateParams::VisitPolicy::kSourceOnly);
  // With kSourceOnly every node must itself be picked > min_visit times.
  std::uint64_t total_visits = 0;
  for (std::uint32_t v : r.visit) {
    EXPECT_GT(v, 20u);
    total_visits += v;
  }
  EXPECT_EQ(total_visits, r.iterations);  // one visit per Dijkstra
}

TEST(SaturateNetworkTest, UniformPolicyTerminates) {
  const SaturationResult r = run_s27(1, SaturateParams::SourcePolicy::kUniform,
                                     SaturateParams::VisitPolicy::kTreeNodes);
  for (std::uint32_t v : r.visit) EXPECT_GT(v, 20u);
}

TEST(SaturateNetworkTest, ParameterValidation) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  SaturateParams p;
  p.capacity = 0;
  EXPECT_THROW(saturate_network(g, p), std::invalid_argument);
  p = SaturateParams{};
  p.delta = -0.1;
  EXPECT_THROW(saturate_network(g, p), std::invalid_argument);
  p = SaturateParams{};
  p.min_visit = -1;
  EXPECT_THROW(saturate_network(g, p), std::invalid_argument);
}

TEST(SaturateNetworkTest, FlowQuantumIsDelta) {
  // Every net's flow is an integer multiple of delta.
  const SaturationResult r = run_s27(3);
  for (double f : r.flow) {
    const double multiple = f / 0.01;
    EXPECT_NEAR(multiple, std::round(multiple), 1e-6);
  }
}

TEST(SaturateNetworkTest, MidSizeCircuitSaturatesQuickly) {
  const Netlist nl = load_benchmark("s510");
  const CircuitGraph g(nl);
  SaturateParams p;
  const SaturationResult r = saturate_network(g, p);
  EXPECT_LT(r.iterations, p.max_iterations);
  for (std::uint32_t v : r.visit) EXPECT_GT(v, 20u);
}

}  // namespace
}  // namespace merced
