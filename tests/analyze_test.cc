// Conformance tests for the static netlist analyzer (src/analyze).
//
// The analyzer's whole value is that its FaultPlan is a *proof sketch* the
// kernels replay without re-deriving: a wrong-but-plausible plan still
// yields a plausible coverage table. These tests pin the contracts that
// make the plan trustworthy:
//
//  * plan actions partition the fault universe and valid_for() holds on
//    every analyzed CUT, hand-built or random;
//  * constant propagation finds provably tied nets, and the faults it
//    proves untestable (tied sites, dead D-frontiers, unobservable stubs)
//    are confirmed fault-by-fault by the SAT redundancy prover — a refuted
//    claim is a bug in the analyzer, never a tolerable approximation;
//  * collapsed-then-expanded verdicts are bit-identical to the full sweep
//    on random compiled CUTs, at jobs 1 and 8, at every SIMD width this
//    host supports, and on the u64 oracle path;
//  * PpetSession::set_fault_plans reproduces the plan-free
//    measure_coverage result station-for-station;
//  * the merced-analyze-v1 artifact round-trips through the validator and
//    corrupted artifacts (schema drift, broken arithmetic) are rejected;
//  * the analyze.* observability counters carry the plan's numbers.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyze/analyze.h"
#include "analyze/analyze_json.h"
#include "circuits/generator.h"
#include "core/merced.h"
#include "core/ppet_session.h"
#include "graph/circuit_graph.h"
#include "netlist/bench_io.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "partition/clustering.h"
#include "sat/redundancy.h"
#include "sim/cone.h"
#include "sim/fault.h"
#include "sim/simd.h"

namespace merced {
namespace {

using analyze::analyze_circuit;
using analyze::analyze_cut;
using analyze::AnalyzeOptions;
using analyze::CutAnalysis;

/// One cluster holding every non-PI node: the whole circuit as a single CUT.
Clustering whole_circuit_cluster(const CircuitGraph& g) {
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters.emplace_back();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.is_pi(v)) {
      c.cluster_of[v] = 0;
      c.clusters[0].push_back(v);
    }
  }
  return c;
}

void expect_same_coverage(const CoverageResult& planned, const CoverageResult& plain,
                          const std::string& context) {
  EXPECT_EQ(planned.total_faults, plain.total_faults) << context;
  EXPECT_EQ(planned.detected, plain.detected) << context;
  ASSERT_EQ(planned.undetected.size(), plain.undetected.size()) << context;
  for (std::size_t i = 0; i < planned.undetected.size(); ++i) {
    EXPECT_EQ(planned.undetected[i], plain.undetected[i]) << context << " fault " << i;
  }
}

std::vector<SimdWidth> supported_widths() {
  std::vector<SimdWidth> widths{SimdWidth::k64};
  if (simd_width_supported(SimdWidth::k256)) widths.push_back(SimdWidth::k256);
  if (simd_width_supported(SimdWidth::k512)) widths.push_back(SimdWidth::k512);
  return widths;
}

/// Same random spec family as property_test.cc: every field derives from
/// the seed alone, so a failing instance reproduces from its parameter.
SyntheticSpec random_spec(std::uint64_t seed) {
  std::mt19937_64 rng(0xabcdef1234567890ULL ^ (seed * 0x9e3779b97f4a7c15ULL));
  auto in = [&](std::size_t lo, std::size_t hi) { return lo + rng() % (hi - lo + 1); };
  SyntheticSpec s;
  s.name = "an" + std::to_string(seed);
  s.num_pis = in(4, 12);
  s.num_dffs = in(3, 16);
  s.num_gates = in(30, 120);
  s.num_invs = in(5, 30);
  s.target_area = (s.num_gates + s.num_invs) * in(3, 5);
  s.scc_dff_fraction = static_cast<double>(in(5, 10)) / 10.0;
  s.seed = seed * 7 + 1;
  return s;
}

/// Hand-built cone with known redundancy: red = OR(a, NOT a) is constant 1,
/// z = OR(red, k1) is constant 1, and y = NOR(m, red) is constant 0.
Netlist redundant_netlist() {
  return parse_bench(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\n"
      "OUTPUT(y)\nOUTPUT(z)\nOUTPUT(w)\n"
      "xn = NOT(a)\n"
      "red = OR(a, xn)\n"
      "k1 = CONST1()\n"
      "par = XOR(b, c, d)\n"
      "m = MUX(a, par, b)\n"
      "y = NOR(m, red)\n"
      "z = OR(red, k1)\n"
      "w = XNOR(m, par)\n");
}

void expect_plan_partitions_universe(const CutAnalysis& an, std::size_t num_faults,
                                     const std::string& context) {
  EXPECT_TRUE(an.plan.valid_for(num_faults)) << context;
  EXPECT_EQ(an.total_faults, num_faults) << context;
  EXPECT_EQ(an.swept + an.copied + an.inferred + an.untestable, an.total_faults)
      << context;
  EXPECT_GE(an.classes, an.swept + an.inferred) << context;
  ASSERT_EQ(an.untestable_fault.size(), num_faults) << context;
  std::size_t flagged = 0;
  for (const std::uint8_t u : an.untestable_fault) flagged += u != 0;
  EXPECT_EQ(flagged, an.untestable) << context;
}

// ------------------------------------------------ hand-built constants ---

TEST(AnalyzeTest, ConstantPropagationFindsTiedNetsAndTiedFaults) {
  const Netlist nl = redundant_netlist();
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  const std::vector<Fault> faults = cone.cluster_faults();
  const CutAnalysis an = analyze_cut(cone, 0);

  expect_plan_partitions_universe(an, faults.size(), "redundant cone");
  // k1 is a Const1 source; red and z are implication-provable ties.
  EXPECT_GE(an.constant_slots, 3u);

  // Tied nets make their stuck-at-the-tied-value faults untestable: the
  // faulty machine equals the good machine on every pattern.
  auto untestable_of = [&](const char* net, bool stuck) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (faults[i].site == Fault::Site::kOutput &&
          nl.gate(faults[i].gate).name == net &&
          faults[i].stuck_value == stuck) {
        return an.untestable_fault[i] != 0;
      }
    }
    ADD_FAILURE() << "fault " << net << " stuck-at-" << stuck << " not in universe";
    return false;
  };
  EXPECT_TRUE(untestable_of("red", true));   // red is tied to 1
  EXPECT_TRUE(untestable_of("z", true));     // z is tied to 1
  EXPECT_TRUE(untestable_of("y", false));    // y = NOR(m, 1) is tied to 0
  EXPECT_FALSE(untestable_of("z", false));   // any pattern detects z s-a-0
  EXPECT_FALSE(untestable_of("w", false));
  EXPECT_FALSE(untestable_of("w", true));
}

TEST(AnalyzeTest, UntestabilityClaimsConfirmedBySatProver) {
  const Netlist nl = redundant_netlist();
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  const std::vector<Fault> faults = cone.cluster_faults();
  const CutAnalysis an = analyze_cut(cone, 0);
  ASSERT_GT(an.untestable, 0u);

  const sat::UntestableCrossCheck check =
      sat::cross_check_untestable(cone, faults, an.untestable_fault);
  EXPECT_EQ(check.checked, an.untestable);
  EXPECT_TRUE(check.all_confirmed())
      << check.disagreements.size() << " disagreements, " << check.unknown
      << " unknown";
}

TEST(AnalyzeTest, PlannedVerdictsMatchPlainSweepOnHandBuiltCone) {
  const Netlist nl = redundant_netlist();
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  const CutAnalysis an = analyze_cut(cone, 0);

  CoverageOptions plain;
  const CoverageResult reference = exhaustive_coverage(cone, plain);
  for (const SimdWidth width : supported_widths()) {
    for (const std::size_t jobs : {1u, 8u}) {
      CoverageOptions opt;
      opt.jobs = jobs;
      opt.simd = width;
      opt.plan = &an.plan;
      expect_same_coverage(exhaustive_coverage(cone, opt), reference,
                           "width " + std::to_string(static_cast<int>(width)) +
                               " jobs " + std::to_string(jobs));
    }
  }
  CoverageOptions u64;
  u64.u64_oracle = true;
  u64.plan = &an.plan;
  expect_same_coverage(exhaustive_coverage(cone, u64), reference, "u64 oracle");
}

TEST(AnalyzeTest, CollapseDisabledStillPartitionsAndMatches) {
  const Netlist nl = redundant_netlist();
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);

  AnalyzeOptions opt;
  opt.enable_collapse = false;
  const CutAnalysis an = analyze_cut(cone, 0, opt);
  expect_plan_partitions_universe(an, cone.cluster_faults().size(), "no-collapse");
  EXPECT_EQ(an.copied, 0u);
  EXPECT_EQ(an.inferred, 0u);

  CoverageOptions planned;
  planned.plan = &an.plan;
  expect_same_coverage(exhaustive_coverage(cone, planned),
                       exhaustive_coverage(cone, CoverageOptions{}), "no-collapse");
}

TEST(AnalyzeTest, ObsCountersCarryThePlanNumbers) {
  const Netlist nl = redundant_netlist();
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  const CutAnalysis an = analyze_cut(cone, 0);

  obs::reset();
  obs::enable();
  CoverageOptions opt;
  opt.plan = &an.plan;
  (void)exhaustive_coverage(cone, opt);
  EXPECT_EQ(obs::counter_value(obs::Counter::kAnalyzeCollapsedFaults),
            an.copied + an.inferred);
  EXPECT_EQ(obs::counter_value(obs::Counter::kAnalyzeProvedUntestable), an.untestable);
  obs::disable();
  obs::reset();

  EXPECT_STREQ(obs::counter_name(obs::Counter::kAnalyzeCollapsedFaults),
               "analyze.collapsed_faults");
  EXPECT_STREQ(obs::counter_name(obs::Counter::kAnalyzeProvedUntestable),
               "analyze.proved_untestable");
  EXPECT_STREQ(obs::counter_name(obs::Counter::kAnalyzeResidueResims),
               "analyze.residue_resims");
}

// --------------------------------------------- random compiled circuits ---

class AnalyzedCircuitProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzedCircuitProperty, CollapsedThenExpandedVerdictsBitIdentical) {
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  MercedConfig config;
  config.lk = 8;
  config.multi_start = 2;
  const PreparedCircuit prepared(nl, config.flow, config.multi_start, config.jobs);
  const MercedResult r = compile(prepared, config);

  const std::vector<SimdWidth> widths = supported_widths();
  std::size_t cones_checked = 0;
  for (std::size_t ci = 0; ci < r.partitions.count(); ++ci) {
    if (r.partitions.clusters[ci].empty()) continue;
    const ConeSimulator cone(prepared.graph, r.partitions, ci);
    if (cone.cut_inputs().size() > 10 || cone.cluster_faults().empty()) continue;
    const CutAnalysis an = analyze_cut(cone, ci);
    expect_plan_partitions_universe(an, cone.cluster_faults().size(),
                                    "cluster " + std::to_string(ci));

    const CoverageResult reference = exhaustive_coverage(cone, CoverageOptions{});
    for (const SimdWidth width : widths) {
      for (const std::size_t jobs : {1u, 8u}) {
        CoverageOptions opt;
        opt.jobs = jobs;
        opt.simd = width;
        opt.plan = &an.plan;
        expect_same_coverage(
            exhaustive_coverage(cone, opt), reference,
            "seed " + std::to_string(GetParam()) + " cluster " + std::to_string(ci) +
                " width " + std::to_string(static_cast<int>(width)) + " jobs " +
                std::to_string(jobs));
      }
    }
    CoverageOptions u64;
    u64.u64_oracle = true;
    u64.plan = &an.plan;
    expect_same_coverage(exhaustive_coverage(cone, u64), reference,
                         "seed " + std::to_string(GetParam()) + " cluster " +
                             std::to_string(ci) + " u64");
    ++cones_checked;
  }
  EXPECT_GT(cones_checked, 0u) << "spec produced no analyzable cones";
}

TEST_P(AnalyzedCircuitProperty, StaticClaimsAgreeWithSatOnCompiledCuts) {
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  MercedConfig config;
  config.lk = 8;
  const PreparedCircuit prepared(nl, config.flow);
  const MercedResult r = compile(prepared, config);

  for (std::size_t ci = 0; ci < r.partitions.count(); ++ci) {
    if (r.partitions.clusters[ci].empty()) continue;
    const ConeSimulator cone(prepared.graph, r.partitions, ci);
    const std::vector<Fault> faults = cone.cluster_faults();
    if (faults.empty()) continue;
    const CutAnalysis an = analyze_cut(cone, ci);
    if (an.untestable == 0) continue;
    const sat::UntestableCrossCheck check =
        sat::cross_check_untestable(cone, faults, an.untestable_fault);
    EXPECT_TRUE(check.all_confirmed())
        << "seed " << GetParam() << " cluster " << ci << ": "
        << check.disagreements.size() << " disagreements, " << check.unknown
        << " unknown";
  }
}

TEST_P(AnalyzedCircuitProperty, SessionFaultPlansReproducePlanFreeCoverage) {
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  MercedConfig config;
  config.lk = 8;
  const PreparedCircuit prepared(nl, config.flow);
  const MercedResult r = compile(prepared, config);
  if (!r.feasible) GTEST_SKIP() << "infeasible partition; session needs ι ≤ 32";

  const analyze::CircuitAnalysis ca = analyze_circuit(prepared.graph, r.partitions);
  ASSERT_EQ(ca.cuts.size(), r.partitions.count());

  for (const std::size_t jobs : {1u, 8u}) {
    PpetSession plain(prepared.graph, r, 16, jobs);
    PpetSession planned(prepared.graph, r, 16, jobs);
    std::vector<FaultPlan> plans;
    plans.reserve(planned.num_stations());
    for (std::size_t s = 0; s < planned.num_stations(); ++s) {
      plans.push_back(ca.cuts[planned.station(s).partition_index].plan);
    }
    planned.set_fault_plans(std::move(plans));
    ASSERT_TRUE(planned.has_fault_plans());

    const std::vector<CoverageResult> want = plain.measure_coverage(10);
    const std::vector<CoverageResult> got = planned.measure_coverage(10);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_same_coverage(got[i], want[i],
                           "seed " + std::to_string(GetParam()) + " station " +
                               std::to_string(i) + " jobs " + std::to_string(jobs));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetlists, AnalyzedCircuitProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ----------------------------------------------------- artifact schema ---

TEST(AnalyzeJsonTest, ArtifactRoundTripsThroughValidator) {
  const Netlist nl = generate_circuit(random_spec(2));
  MercedConfig config;
  config.lk = 8;
  const PreparedCircuit prepared(nl, config.flow);
  const MercedResult r = compile(prepared, config);
  const analyze::CircuitAnalysis ca = analyze_circuit(prepared.graph, r.partitions);

  analyze::AnalyzeRunInfo run;
  run.tool = "analyze_test";
  run.circuit = "an2";
  run.lk = config.lk;
  std::ostringstream os;
  analyze::write_analyze_json(os, ca, run);
  const std::string text = os.str();

  const obs::JsonValue doc = obs::JsonValue::parse(text);
  EXPECT_EQ(analyze::validate_analyze_json(doc), "");

  // Schema drift is rejected by name.
  std::string wrong_schema = text;
  const std::size_t at = wrong_schema.find("merced-analyze-v1");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, 17, "merced-analyze-v9");
  EXPECT_NE(analyze::validate_analyze_json(obs::JsonValue::parse(wrong_schema)), "");

  // Broken internal arithmetic is rejected: inflate the summary's swept
  // count so the per-cut sums no longer reproduce it.
  std::string broken = text;
  const std::string key = "\"swept\": " + std::to_string(ca.swept());
  const std::size_t swept_at = broken.find(key);
  ASSERT_NE(swept_at, std::string::npos);
  broken.replace(swept_at, key.size(),
                 "\"swept\": " + std::to_string(ca.swept() + 1));
  EXPECT_NE(analyze::validate_analyze_json(obs::JsonValue::parse(broken)), "");
}

}  // namespace
}  // namespace merced
