// Unit tests for the artifact differ (obs/metrics_diff.h): measurement
// pairing, noise-aware gating in both directions, identity refusal, and the
// merced-diff-v1 document round-trip plus its validator's error paths.
//
// The differ consumes artifacts, so the fixtures here are hand-built JSON
// documents with controlled values — big enough that the default absolute
// floors are negligible and the relative gates dominate, making every
// expected verdict a matter of arithmetic rather than timing.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/metrics_diff.h"

namespace merced {
namespace {

obs::JsonValue parse(const std::string& text) { return obs::JsonValue::parse(text); }

/// A minimal metrics artifact: one phase, one histogram, a memory section.
std::string metrics_doc(const std::string& cpu, int hardware_concurrency,
                        double total_seconds, long long p99_ns, int lk = 8) {
  std::ostringstream os;
  os << R"({"schema": "merced-metrics-v2", "run": {"tool": "t", "circuit": "c",)"
     << R"( "lk": )" << lk
     << R"(, "jobs": 1, "starts": 1, "simd": 64, "cpu": ")" << cpu
     << R"(", "hardware_concurrency": )" << hardware_concurrency << R"(},)"
     << R"( "counters": {}, "phases": [{"name": "kernel", "count": 4,)"
     << R"( "total_seconds": )" << total_seconds << R"(, "max_seconds": )"
     << total_seconds << R"(}], "histograms": [{"name": "kernel", "count": 4,)"
     << R"( "sum": 4000, "min": 500, "max": )" << p99_ns
     << R"(, "p50": 800, "p90": 900, "p99": )" << p99_ns
     << R"(, "buckets": []}], "memory": {"peak_rss_bytes": 1048576,)"
     << R"( "alloc_hook": true, "allocations": 10, "bytes_allocated": 1000,)"
     << R"( "high_water_bytes": 500}})";
  return os.str();
}

/// A minimal BENCH_simkernel artifact with a controlled kernel speedup.
std::string bench_doc(const std::string& cpu, double speedup) {
  std::ostringstream os;
  os << R"({"cpu": ")" << cpu << R"(", "hardware_concurrency": 4,)"
     << R"( "generated": {"inputs": 36, "gates": 600, "naive_seconds": 10.0,)"
     << R"( "kernel_seconds": )" << 10.0 / speedup << R"(, "speedup": )" << speedup
     << R"(}, "iscas": {"circuit": "c880", "lk": 8, "naive_seconds": 5.0,)"
     << R"( "kernel_seconds": 1.0, "simd_seconds": 0.5, "speedup": 5.0,)"
     << R"( "simd_speedup_vs_u64": 2.0}})";
  return os.str();
}

const obs::DiffEntry* find_entry(const obs::DiffResult& result,
                                 const std::string& metric) {
  for (const obs::DiffEntry& e : result.entries) {
    if (e.metric == metric) return &e;
  }
  return nullptr;
}

TEST(MetricsDiffTest, IdenticalArtifactsCompareOk) {
  const obs::JsonValue doc = parse(metrics_doc("cpu0", 4, 1.0, 1000));
  const obs::DiffResult result = obs::diff_artifacts(doc, doc, {});
  EXPECT_EQ(result.error, "");
  EXPECT_TRUE(result.ok());
  ASSERT_FALSE(result.entries.empty());
  for (const obs::DiffEntry& e : result.entries) {
    EXPECT_EQ(e.direction, "ok") << e.metric;
    EXPECT_EQ(e.delta_rel, 0.0) << e.metric;
  }
  // Timing gates, memory is informational.
  EXPECT_TRUE(find_entry(result, "phase kernel total_seconds")->gated);
  EXPECT_TRUE(find_entry(result, "hist kernel p99_seconds")->gated);
  EXPECT_FALSE(find_entry(result, "memory peak_rss_mib")->gated);
}

TEST(MetricsDiffTest, InflatedTimingIsSlowerAndNamesThePhase) {
  // Current runs 2x the baseline: well past rel=0.35 + 5 ms on a 1 s phase.
  const obs::JsonValue base = parse(metrics_doc("cpu0", 4, 1.0, 1000));
  const obs::JsonValue cur = parse(metrics_doc("cpu0", 4, 2.0, 1000));
  const obs::DiffResult result = obs::diff_artifacts(base, cur, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions(), 2u);  // total_seconds and max_seconds
  const obs::DiffEntry* e = find_entry(result, "phase kernel total_seconds");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->direction, "slower");
  EXPECT_DOUBLE_EQ(e->delta_rel, 1.0);
}

TEST(MetricsDiffTest, InflatedBaselineQuantileFlagsCurrentAsFaster) {
  // The acceptance scenario: the baseline's p99 is 2x the current run's.
  // "Faster" still fails the gate — a stale baseline must be refreshed, not
  // silently raise the bar for every later commit.
  const obs::JsonValue base = parse(metrics_doc("cpu0", 4, 1.0, 2000000000LL));
  const obs::JsonValue cur = parse(metrics_doc("cpu0", 4, 1.0, 1000000000LL));
  const obs::DiffResult result = obs::diff_artifacts(base, cur, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions(), 0u);
  EXPECT_GE(result.improvements(), 1u);
  const obs::DiffEntry* e = find_entry(result, "hist kernel p99_seconds");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->direction, "faster");
}

TEST(MetricsDiffTest, RatioGatesDownwardOnly) {
  // speedup 50 -> 20 trips the gate (threshold 0.35*50 + 0.10 = 17.6 < 30).
  const obs::DiffResult drop = obs::diff_artifacts(
      parse(bench_doc("cpu0", 50.0)), parse(bench_doc("cpu0", 20.0)), {});
  EXPECT_FALSE(drop.ok());
  const obs::DiffEntry* e = find_entry(drop, "generated speedup");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->cls, "ratio");
  EXPECT_EQ(e->direction, "lower");

  // A kernel that got *more* ahead of its oracle is just good news — but
  // its kernel_seconds drop is a timing improvement, which still flags.
  const obs::DiffResult rise = obs::diff_artifacts(
      parse(bench_doc("cpu0", 20.0)), parse(bench_doc("cpu0", 50.0)), {});
  const obs::DiffEntry* up = find_entry(rise, "generated speedup");
  ASSERT_NE(up, nullptr);
  EXPECT_TRUE(up->gated);
  EXPECT_EQ(up->direction, "ok");
}

TEST(MetricsDiffTest, ConfigMismatchRefuses) {
  const obs::DiffResult result =
      obs::diff_artifacts(parse(metrics_doc("cpu0", 4, 1.0, 1000, /*lk=*/8)),
                          parse(metrics_doc("cpu0", 4, 1.0, 1000, /*lk=*/16)), {});
  EXPECT_NE(result.error.find("config mismatch"), std::string::npos);
  EXPECT_NE(result.error.find("apples-to-oranges"), std::string::npos);
  EXPECT_TRUE(result.entries.empty());
}

TEST(MetricsDiffTest, KindMismatchRefuses) {
  const obs::DiffResult result = obs::diff_artifacts(
      parse(metrics_doc("cpu0", 4, 1.0, 1000)), parse(bench_doc("cpu0", 50.0)), {});
  EXPECT_NE(result.error.find("artifact kind mismatch"), std::string::npos);
}

TEST(MetricsDiffTest, HostMismatchRefusesUnlessIgnored) {
  const obs::JsonValue base = parse(metrics_doc("cpu0", 4, 1.0, 1000));
  const obs::JsonValue cur = parse(metrics_doc("cpu1", 8, 9.0, 1000));
  const obs::DiffResult refused = obs::diff_artifacts(base, cur, {});
  EXPECT_NE(refused.error.find("host mismatch"), std::string::npos);
  EXPECT_NE(refused.error.find("--ignore-host"), std::string::npos);

  // With ignore_host, timing demotes to informational: the 9x inflation no
  // longer gates, and the demotion is called out in the notes.
  obs::DiffThresholds thresholds;
  thresholds.ignore_host = true;
  const obs::DiffResult demoted = obs::diff_artifacts(base, cur, thresholds);
  EXPECT_EQ(demoted.error, "");
  EXPECT_TRUE(demoted.ok());
  const obs::DiffEntry* e = find_entry(demoted, "phase kernel total_seconds");
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->gated);
  EXPECT_EQ(e->direction, "ok");
  bool noted = false;
  for (const std::string& note : demoted.notes) {
    noted = noted || note.find("demoted to informational") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(MetricsDiffTest, UnpairedMetricsLandInNotes) {
  // Strip the histogram from the current artifact: its metrics appear only
  // in the baseline and must be reported, not silently dropped.
  std::string cur = metrics_doc("cpu0", 4, 1.0, 1000);
  const std::size_t at = cur.find("\"histograms\"");
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = cur.find("}]", at);  // close of the histograms array
  ASSERT_NE(end, std::string::npos);
  cur.replace(at, end + 2 - at, "\"histograms\": []");
  const obs::DiffResult result = obs::diff_artifacts(
      parse(metrics_doc("cpu0", 4, 1.0, 1000)), parse(cur), {});
  bool noted = false;
  for (const std::string& note : result.notes) {
    noted = noted ||
            note.find("\"hist kernel p99_seconds\" only in baseline") !=
                std::string::npos;
  }
  EXPECT_TRUE(noted);
}

// ---- merced-diff-v1 document --------------------------------------------

std::string render_diff_json(const obs::DiffResult& result) {
  std::ostringstream os;
  obs::write_diff_json(os, result);
  return os.str();
}

obs::DiffResult regression_result() {
  obs::DiffResult result = obs::diff_artifacts(
      parse(metrics_doc("cpu0", 4, 1.0, 1000)),
      parse(metrics_doc("cpu0", 4, 2.0, 1000)), {});
  result.baseline_label = "base.json";
  result.current_label = "cur.json";
  return result;
}

TEST(DiffJsonTest, DocumentRoundTripsThroughValidator) {
  const obs::JsonValue doc = parse(render_diff_json(regression_result()));
  EXPECT_EQ(obs::validate_diff_json(doc), "");
  EXPECT_EQ(doc.find("schema")->as_string(), "merced-diff-v1");
  EXPECT_EQ(doc.find("verdict")->as_string(), "regression");
  EXPECT_EQ(doc.find("baseline")->as_string(), "base.json");

  obs::DiffResult ok = obs::diff_artifacts(parse(metrics_doc("cpu0", 4, 1.0, 1000)),
                                           parse(metrics_doc("cpu0", 4, 1.0, 1000)), {});
  const obs::JsonValue ok_doc = parse(render_diff_json(ok));
  EXPECT_EQ(obs::validate_diff_json(ok_doc), "");
  EXPECT_EQ(ok_doc.find("verdict")->as_string(), "ok");
}

TEST(DiffJsonTest, ValidatorRejectsSchemaDrift) {
  std::string text = render_diff_json(regression_result());
  const std::size_t at = text.find("merced-diff-v1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::string("merced-diff-v1").size(), "merced-diff-v2");
  EXPECT_EQ(obs::validate_diff_json(parse(text)),
            "unknown schema \"merced-diff-v2\"");
}

TEST(DiffJsonTest, ValidatorRejectsVerdictInconsistentWithEntries) {
  std::string text = render_diff_json(regression_result());
  const std::size_t at = text.find("\"verdict\": \"regression\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::string("\"verdict\": \"regression\"").size(),
               "\"verdict\": \"ok\"");
  EXPECT_EQ(obs::validate_diff_json(parse(text)),
            "verdict: inconsistent with entry directions");
}

TEST(DiffJsonTest, ValidatorRejectsSummaryCountDrift) {
  std::string text = render_diff_json(regression_result());
  const std::size_t at = text.find("\"regressions\": 2");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::string("\"regressions\": 2").size(), "\"regressions\": 0");
  EXPECT_EQ(obs::validate_diff_json(parse(text)),
            "summary: regression count does not match entries");
}

TEST(DiffJsonTest, ValidatorRejectsUngatedVerdict) {
  std::string text = render_diff_json(regression_result());
  const std::string ungated = "\"gated\": false, \"direction\": \"ok\"";
  const std::size_t at = text.find(ungated);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, ungated.size(), "\"gated\": false, \"direction\": \"slower\"");
  EXPECT_EQ(obs::validate_diff_json(parse(text)),
            "entry \"memory peak_rss_mib\": ungated entry carries a verdict");
}

TEST(DiffJsonTest, ValidatorNamesMissingMembers) {
  EXPECT_EQ(obs::validate_diff_json(parse(R"({"x": 1})")),
            "root: missing member \"schema\"");
  EXPECT_EQ(obs::validate_diff_json(parse(R"({"schema": 7})")),
            "root: member \"schema\" has wrong type");
}

TEST(DiffJsonTest, TableNamesRegressionsAndSuggestsBaselineRefresh) {
  std::ostringstream os;
  obs::write_diff_table(os, regression_result());
  const std::string table = os.str();
  EXPECT_NE(table.find("verdict: REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("phase kernel total_seconds slower"), std::string::npos);

  // An improvement-only drift points at the baseline-refresh workflow.
  obs::DiffResult faster = obs::diff_artifacts(
      parse(metrics_doc("cpu0", 4, 2.0, 1000)),
      parse(metrics_doc("cpu0", 4, 1.0, 1000)), {});
  std::ostringstream os2;
  obs::write_diff_table(os2, faster);
  EXPECT_NE(os2.str().find("refresh the committed baseline"), std::string::npos);
}

}  // namespace
}  // namespace merced
