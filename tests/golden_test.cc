// Golden-file regression tests for the paper tables.
//
// The bench binaries reproduce Tables 1/9/10/11 for eyeballing; these tests
// snapshot the same numbers into tests/golden/ so a paper-fidelity
// regression fails CI instead of relying on a human re-reading the tables.
//
// The snapshots are normalized text: one record per line, space-separated,
// no timing columns (wall clock is machine noise), fixed 2-decimal floats.
// Everything pinned here is deterministic: Table 1 is arithmetic, Table 9
// is seeded generation, and the partition summaries use the compiler's
// default (fixed-seed, single-start) configuration.
//
// To regenerate after an *intentional* behaviour change:
//   MERCED_UPDATE_GOLDEN=1 ./tests/golden_test && ./tests/golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bist/cbit_area.h"
#include "bist/polynomials.h"
#include "circuits/registry.h"
#include "core/merced.h"

namespace merced {
namespace {

std::string golden_path(const std::string& file) {
  return std::string(MERCED_GOLDEN_DIR) + "/" + file;
}

/// Compares `actual` against the stored snapshot (or rewrites it when
/// MERCED_UPDATE_GOLDEN is set). Reports a full-text diff context on
/// mismatch: the first differing line is what a reviewer needs.
void check_golden(const std::string& file, const std::string& actual) {
  const std::string path = golden_path(file);
  if (std::getenv("MERCED_UPDATE_GOLDEN") != nullptr) {
    std::filesystem::create_directories(std::filesystem::path(path).parent_path());
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with MERCED_UPDATE_GOLDEN=1 to create it";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string expected = ss.str();
  if (expected == actual) return;

  std::istringstream e(expected), a(actual);
  std::string el, al;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool eg = static_cast<bool>(std::getline(e, el));
    const bool ag = static_cast<bool>(std::getline(a, al));
    if (!eg && !ag) break;
    if (!eg) el = "<end of golden>";
    if (!ag) al = "<end of actual>";
    ASSERT_EQ(el, al) << file << ": first mismatch at line " << line;
  }
  FAIL() << file << ": content differs";  // unreachable belt-and-braces
}

std::string fixed2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

TEST(GoldenTableTest, Table1CbitArea) {
  std::ostringstream out;
  out << "# Table 1: type length taps paper_p_k model_p_k paper_sigma_k\n";
  for (const CbitAreaRow& row : published_cbit_areas()) {
    out << "d" << row.type_index << " " << row.length << " "
        << primitive_taps(row.length).size() << " " << fixed2(row.area_per_dff) << " "
        << fixed2(modeled_area_per_dff(row.length)) << " " << fixed2(row.area_per_bit)
        << "\n";
  }
  check_golden("table1_cbit_area.txt", out.str());
}

TEST(GoldenTableTest, Table9CircuitInfo) {
  std::ostringstream out;
  out << "# Table 9: circuit PI DFF gates INV outputs area\n";
  for (const BenchmarkEntry& e : benchmark_suite()) {
    const CircuitStats s = compute_stats(load_benchmark(e.spec.name));
    out << s.name << " " << s.num_inputs << " " << s.num_dffs << " " << s.num_gates
        << " " << s.num_invs << " " << s.num_outputs << " " << s.estimated_area << "\n";
  }
  check_golden("table9_circuit_info.txt", out.str());
}

// ---- Tables 10/11: per-circuit lk sweep ----------------------------------
//
// Each circuit × lk pair is its own ctest case with its own golden file
// (tests/golden/partition_lk<lk>/<circuit>.txt). A paper-fidelity
// regression therefore names the exact circuit that moved, and the sweep
// shards across ctest -j workers instead of serializing eight compiles
// inside one test body.

struct PartitionCase {
  const char* circuit;
  std::size_t lk;
};

/// Compiles one suite circuit at one lk and formats the Table 10/11
/// partition summary columns (all deterministic fields).
std::string partition_summary(const PartitionCase& c) {
  const Netlist nl = load_benchmark(c.circuit);
  MercedConfig config;
  config.lk = c.lk;
  const MercedResult r = compile(nl, config);
  std::ostringstream out;
  out << "# Tables 10/11 (lk=" << c.lk
      << "): circuit partitions dffs_on_scc cuts_on_scc nets_cut feasible "
         "retimable multiplexed\n";
  out << c.circuit << " " << r.partitions.count() << " " << r.dffs_on_scc << " "
      << r.cuts.cut_nets_on_scc << " " << r.cuts.nets_cut << " "
      << (r.feasible ? 1 : 0) << " " << r.area.retimable_cuts << " "
      << r.area.multiplexed_cuts << "\n";
  return out.str();
}

class GoldenPartitionTest : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(GoldenPartitionTest, MatchesSnapshot) {
  const PartitionCase& c = GetParam();
  const std::string file =
      "partition_lk" + std::to_string(c.lk) + "/" + c.circuit + ".txt";
  check_golden(file, partition_summary(c));
}

constexpr const char* kPartitionCircuits[] = {"s27",  "s510", "s420.1", "s641",
                                              "s713", "s820", "s832",   "s838.1"};

std::vector<PartitionCase> partition_cases() {
  std::vector<PartitionCase> cases;
  for (std::size_t lk : {std::size_t{16}, std::size_t{24}}) {
    for (const char* circuit : kPartitionCircuits) {
      cases.push_back(PartitionCase{circuit, lk});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Tables10And11, GoldenPartitionTest, ::testing::ValuesIn(partition_cases()),
    [](const ::testing::TestParamInfo<PartitionCase>& info) {
      std::string name(info.param.circuit);
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name + "_lk" + std::to_string(info.param.lk);
    });

}  // namespace
}  // namespace merced
