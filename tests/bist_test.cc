#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <set>
#include <vector>

#include "bist/cbit.h"
#include "bist/cbit_area.h"
#include "bist/lfsr.h"
#include "bist/misr.h"
#include "bist/polynomials.h"

namespace merced {
namespace {

// ----------------------------------------------------------- polynomials ---

TEST(PolynomialTest, AllDegreesAvailable) {
  for (unsigned d = kMinLfsrDegree; d <= kMaxLfsrDegree; ++d) {
    const auto taps = primitive_taps(d);
    ASSERT_FALSE(taps.empty());
    EXPECT_EQ(taps[0], d) << "leading tap must equal the degree";
    for (std::size_t i = 1; i < taps.size(); ++i) {
      EXPECT_LT(taps[i], taps[i - 1]) << "taps must be strictly descending";
      EXPECT_GE(taps[i], 1u);
    }
    EXPECT_EQ(feedback_xor_count(d), taps.size() - 1);
  }
  EXPECT_THROW(primitive_taps(1), std::invalid_argument);
  EXPECT_THROW(primitive_taps(33), std::invalid_argument);
}

TEST(PolynomialTest, MaskMatchesTaps) {
  for (unsigned d : {4u, 8u, 16u, 24u, 32u}) {
    const std::uint64_t mask = primitive_tap_mask(d);
    for (std::uint8_t t : primitive_taps(d)) {
      EXPECT_TRUE(mask & (std::uint64_t{1} << (t - 1)));
    }
    EXPECT_EQ(static_cast<std::size_t>(std::popcount(mask)), primitive_taps(d).size());
  }
}

// ------------------------------------------------------------------ LFSR ---

// Primitivity: an n-bit maximal-length LFSR visits all 2^n - 1 nonzero
// states. Checked exhaustively for every degree up to 16.
class LfsrPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrPeriod, MaximalLengthWithoutZeroSplice) {
  const unsigned n = GetParam();
  Lfsr lfsr(n, /*complete_cycle=*/false, 1);
  const std::uint64_t expect = (std::uint64_t{1} << n) - 1;
  std::uint64_t count = 0;
  do {
    lfsr.step();
    ++count;
  } while (lfsr.state() != 1 && count <= expect);
  EXPECT_EQ(count, expect);
  EXPECT_EQ(lfsr.period(), expect);
}

TEST_P(LfsrPeriod, CompleteCycleVisitsAllStates) {
  const unsigned n = GetParam();
  Lfsr lfsr(n, /*complete_cycle=*/true, 0);
  const std::uint64_t period = std::uint64_t{1} << n;
  std::vector<bool> seen(period, false);
  for (std::uint64_t i = 0; i < period; ++i) {
    EXPECT_FALSE(seen[lfsr.state()]) << "state repeated before full period";
    seen[lfsr.state()] = true;
    lfsr.step();
  }
  EXPECT_EQ(lfsr.state(), 0u) << "must return to the start state";
  for (std::uint64_t s = 0; s < period; ++s) EXPECT_TRUE(seen[s]) << "state " << s;
}

INSTANTIATE_TEST_SUITE_P(Degrees2To16, LfsrPeriod,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u,
                                           12u, 13u, 14u, 15u, 16u));

TEST(LfsrTest, LargeDegreesDoNotShortCycle) {
  // Full enumeration of 2^24+ is too slow; check no repeat in a window.
  for (unsigned n : {20u, 24u, 32u}) {
    Lfsr lfsr(n, true, 1);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100000; ++i) {
      ASSERT_TRUE(seen.insert(lfsr.state()).second)
          << "degree " << n << " repeated after " << i;
      lfsr.step();
    }
  }
}

TEST(LfsrTest, ZeroStateRejectedWithoutSplice) {
  EXPECT_THROW(Lfsr(8, false, 0), std::invalid_argument);
}

// ------------------------------------------------------------------ MISR ---

TEST(MisrTest, DifferentStreamsGiveDifferentSignatures) {
  Misr a(16), b(16);
  for (std::uint64_t t = 0; t < 100; ++t) {
    a.step(t * 0x9e37 % 65536);
    b.step(t * 0x9e37 % 65536);
  }
  EXPECT_EQ(a.signature(), b.signature());
  // One corrupted word in the middle changes the signature.
  Misr c(16);
  for (std::uint64_t t = 0; t < 100; ++t) {
    c.step((t == 50 ? 1 : 0) ^ (t * 0x9e37 % 65536));
  }
  EXPECT_NE(a.signature(), c.signature());
}

TEST(MisrTest, SingleBitErrorAlwaysDetected) {
  // A single-bit corruption can never alias (the MISR is linear and one
  // injected error term cannot cancel itself).
  for (unsigned bit = 0; bit < 8; ++bit) {
    for (unsigned when = 0; when < 20; ++when) {
      Misr good(8), bad(8);
      for (unsigned t = 0; t < 20; ++t) {
        const std::uint64_t word = (t * 37 + 11) % 256;
        good.step(word);
        bad.step(t == when ? word ^ (1u << bit) : word);
      }
      EXPECT_NE(good.signature(), bad.signature())
          << "bit " << bit << " at cycle " << when;
    }
  }
}

TEST(MisrTest, LinearityOverGf2) {
  // signature(a xor b) xor signature(a) xor signature(b) == signature(0...0)
  std::vector<std::uint64_t> sa(32), sb(32);
  std::mt19937_64 rng(5);
  for (auto& v : sa) v = rng() & 0xffff;
  for (auto& v : sb) v = rng() & 0xffff;
  Misr m_a(16), m_b(16), m_ab(16), m_zero(16);
  for (std::size_t t = 0; t < sa.size(); ++t) {
    m_a.step(sa[t]);
    m_b.step(sb[t]);
    m_ab.step(sa[t] ^ sb[t]);
    m_zero.step(0);
  }
  EXPECT_EQ(m_ab.signature() ^ m_a.signature() ^ m_b.signature(),
            m_zero.signature());
}

// ------------------------------------------------------------------ CBIT ---

TEST(CbitTest, NormalModeIsTransparent) {
  Cbit c(8);
  c.set_mode(CbitMode::kNormal);
  EXPECT_EQ(c.step(0xA5), 0xA5u);
  EXPECT_EQ(c.state(), 0xA5u);
}

TEST(CbitTest, TpgModeIsExhaustive) {
  // In TPG mode the CBIT ignores data and sweeps all 2^n patterns.
  Cbit c(8);
  c.set_mode(CbitMode::kTpg);
  c.set_state(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) {
    seen.insert(c.state());
    c.step(/*parallel_in=*/0xFF);  // data must be ignored
  }
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(c.state(), 0u);  // full cycle returns to start
  EXPECT_EQ(c.tpg_cycles(), 256u);
}

TEST(CbitTest, PsaModeMatchesMisr) {
  Cbit c(12);
  c.set_mode(CbitMode::kPsa);
  Misr m(12);
  for (std::uint64_t t = 0; t < 64; ++t) {
    const std::uint64_t word = (t * 131) & 0xFFF;
    c.step(word);
    m.step(word);
  }
  EXPECT_EQ(c.state(), m.signature());
}

TEST(CbitTest, ScanShiftsSerially) {
  Cbit c(4);
  c.set_mode(CbitMode::kScan);
  c.set_state(0);
  // Shift in 1,0,1,1 -> state 1011 (first bit ends up at the MSB side).
  c.step(0, true);
  c.step(0, false);
  c.step(0, true);
  c.step(0, true);
  EXPECT_EQ(c.state(), 0b1011u);
  EXPECT_EQ(c.scan_out(), true);
}

TEST(CbitTest, ScanRoundTrip) {
  // Scanning out n bits while scanning in a new value implements the
  // signature read-out / re-initialization chain of PPET.
  Cbit c(6);
  c.set_mode(CbitMode::kScan);
  c.set_state(0b101101);
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 6; ++i) {
    out = (out << 1) | (c.scan_out() ? 1 : 0);
    c.step(0, false);
  }
  EXPECT_EQ(out, 0b101101u);
}

TEST(CbitTest, DualModeChaining) {
  // The PSA-side CBIT of CUT_i can switch to TPG for CUT_{i+1}: same
  // hardware, different mode — the core PPET enabler.
  Cbit c(8);
  c.set_mode(CbitMode::kPsa);
  for (std::uint64_t t = 0; t < 32; ++t) c.step(t & 0xFF);
  const std::uint64_t signature = c.state();
  c.set_mode(CbitMode::kTpg);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) {
    seen.insert(c.state());
    c.step(0);
  }
  EXPECT_EQ(seen.size(), 256u);        // exhaustive regardless of seed
  EXPECT_TRUE(seen.contains(signature));
  EXPECT_THROW(Cbit(64), std::invalid_argument);
}

TEST(CbitTest, PipeTestingTimeDominatedByWidest) {
  // Figure 1(b): T = 2^max-width.
  EXPECT_EQ(pipe_testing_time(16), 65536u);
  EXPECT_EQ(pipe_testing_time(24), std::uint64_t{1} << 24);
}

// ------------------------------------------------------------------ area ---

TEST(CbitAreaTest, PublishedTableCarriedVerbatim) {
  ASSERT_EQ(published_cbit_areas().size(), 6u);
  EXPECT_DOUBLE_EQ(published_cbit_areas()[0].area_per_dff, 8.14);
  EXPECT_DOUBLE_EQ(published_cbit_areas()[5].area_per_dff, 63.12);
  EXPECT_EQ(published_area_per_dff(16).value(), 32.21);
  EXPECT_FALSE(published_area_per_dff(10).has_value());
}

TEST(CbitAreaTest, ModelWithinTwoPercentOfPublished) {
  for (const CbitAreaRow& row : published_cbit_areas()) {
    const double modeled = modeled_area_per_dff(row.length);
    EXPECT_NEAR(modeled, row.area_per_dff, 0.02 * row.area_per_dff)
        << "length " << row.length;
  }
}

TEST(CbitAreaTest, PerBitCostDecreasesWithLength) {
  // Table 1 column 4 / Figure 4: sigma_k falls as l_k grows (for the
  // standard lengths beyond the pentanomial hump at l=8).
  const auto rows = published_cbit_areas();
  EXPECT_LT(rows[5].area_per_bit, rows[1].area_per_bit);
  EXPECT_LT(modeled_area_per_dff(32) / 32, modeled_area_per_dff(4) / 4);
}

TEST(CbitAreaTest, TestingTimeGrowsExponentially) {
  EXPECT_EQ(testing_time_cycles(4), 16u);
  EXPECT_EQ(testing_time_cycles(24), std::uint64_t{1} << 24);
}

TEST(CbitAreaTest, CutCellCosts) {
  EXPECT_DOUBLE_EQ(cut_cell_area_per_dff(true), 0.9);
  EXPECT_DOUBLE_EQ(cut_cell_area_per_dff(false), 2.3);
}

TEST(CbitAreaTest, SmallestStandardLength) {
  EXPECT_EQ(smallest_standard_length(1).value(), 4u);
  EXPECT_EQ(smallest_standard_length(4).value(), 4u);
  EXPECT_EQ(smallest_standard_length(5).value(), 8u);
  EXPECT_EQ(smallest_standard_length(17).value(), 24u);
  EXPECT_EQ(smallest_standard_length(32).value(), 32u);
  EXPECT_FALSE(smallest_standard_length(33).has_value());
}

}  // namespace
}  // namespace merced
