#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "circuits/s27.h"
#include "graph/circuit_graph.h"
#include "graph/dijkstra.h"
#include "graph/scc.h"
#include "netlist/bench_io.h"

namespace merced {
namespace {

// ------------------------------------------------------------ structure ---

TEST(CircuitGraphTest, BranchesMatchFanins) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  EXPECT_EQ(g.num_nodes(), nl.size());
  std::size_t total_fanins = 0;
  for (GateId id = 0; id < nl.size(); ++id) total_fanins += nl.gate(id).fanins.size();
  EXPECT_EQ(g.num_branches(), total_fanins);

  for (BranchId b = 0; b < g.num_branches(); ++b) {
    const Branch& br = g.branch(b);
    EXPECT_EQ(br.net, br.source);  // net id == driver id
    const auto& fanins = nl.gate(br.sink).fanins;
    EXPECT_NE(std::find(fanins.begin(), fanins.end(), br.source), fanins.end());
  }
}

TEST(CircuitGraphTest, InOutConsistency) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (BranchId b : g.out_branches(v)) EXPECT_EQ(g.branch(b).source, v);
    for (BranchId b : g.in_branches(v)) EXPECT_EQ(g.branch(b).sink, v);
    EXPECT_EQ(g.in_branches(v).size(), nl.gate(v).fanins.size());
  }
}

TEST(CircuitGraphTest, MultiPinNetHasOneBranchPerSink) {
  // G8 in s27 fans out to G15 and G16.
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  const NodeId g8 = nl.find("G8");
  EXPECT_EQ(g.net_branches(g.net_of(g8)).size(), 2u);
}

TEST(CircuitGraphTest, RequiresFinalizedNetlist) {
  Netlist nl;
  nl.add_gate(GateType::kInput, "a");
  EXPECT_THROW(CircuitGraph{nl}, std::logic_error);
}

// ------------------------------------------------------------------ SCC ---

TEST(SccTest, S27HasTwoLoops) {
  // The s27 feedback structure: {G5,G6,G8..G11,G15,G16} around NOR G11,
  // and {G7,G12,G13} around DFF G7.
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  const SccInfo sccs = find_sccs(g);
  ASSERT_EQ(sccs.count(), 2u);
  EXPECT_EQ(sccs.total_dffs_on_scc(), 3u);

  std::set<std::string> small;
  for (const auto& comp : sccs.components) {
    if (comp.size() == 3) {
      for (NodeId v : comp) small.insert(nl.gate(v).name);
    }
  }
  EXPECT_EQ(small, (std::set<std::string>{"G7", "G12", "G13"}));
}

TEST(SccTest, AcyclicCircuitHasNoLoops) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\nq = DFF(x)\ny = NOT(q)\n");
  const CircuitGraph g(nl);
  EXPECT_EQ(find_sccs(g).count(), 0u);
}

TEST(SccTest, SelfLoopDffDetected) {
  // q feeds itself through an inverter: a 2-node SCC with 1 DFF.
  const Netlist nl =
      parse_bench("INPUT(a)\nOUTPUT(y)\nx = NOT(q)\nq = DFF(x)\ny = AND(a, q)\n");
  const CircuitGraph g(nl);
  const SccInfo sccs = find_sccs(g);
  ASSERT_EQ(sccs.count(), 1u);
  EXPECT_EQ(sccs.components[0].size(), 2u);
  EXPECT_EQ(sccs.dff_count[0], 1u);
}

TEST(SccTest, ComponentOfIsConsistent) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  const SccInfo sccs = find_sccs(g);
  for (std::size_t c = 0; c < sccs.count(); ++c) {
    for (NodeId v : sccs.components[c]) {
      EXPECT_EQ(sccs.component_of[v], static_cast<std::int32_t>(c));
    }
  }
  std::size_t members = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (sccs.component_of[v] != kNoScc) ++members;
  }
  std::size_t listed = 0;
  for (const auto& comp : sccs.components) listed += comp.size();
  EXPECT_EQ(members, listed);
}

TEST(SccTest, NestedLoopsMergeIntoOneComponent) {
  // Two cycles sharing gate x: one SCC containing both DFFs.
  const Netlist nl = parse_bench(
      "INPUT(a)\nOUTPUT(y)\n"
      "x = AND(q1, q2)\n"
      "g1 = NOT(x)\nq1 = DFF(g1)\n"
      "g2 = NAND(x, a)\nq2 = DFF(g2)\n"
      "y = BUF(x)\n");
  const CircuitGraph g(nl);
  const SccInfo sccs = find_sccs(g);
  ASSERT_EQ(sccs.count(), 1u);
  EXPECT_EQ(sccs.dff_count[0], 2u);
  EXPECT_EQ(sccs.components[0].size(), 5u);  // x, g1, q1, g2, q2
}

// ------------------------------------------------------------- Dijkstra ---

TEST(DijkstraTest, UnitWeightsGiveHopCounts) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nOUTPUT(y)\nb = NOT(a)\nc = NOT(b)\nd = NOT(c)\ny = NOT(d)\n");
  const CircuitGraph g(nl);
  std::vector<double> dist(g.num_nets(), 1.0);
  const ShortestPathTree t = dijkstra(g, nl.find("a"), dist);
  EXPECT_DOUBLE_EQ(t.distance[nl.find("a")], 0.0);
  EXPECT_DOUBLE_EQ(t.distance[nl.find("b")], 1.0);
  EXPECT_DOUBLE_EQ(t.distance[nl.find("y")], 4.0);
  EXPECT_EQ(t.reached.size(), 5u);
}

TEST(DijkstraTest, PicksCheaperPath) {
  // a -> y directly (via x1, weight 10) or via chain b,c (weight 1 each).
  Netlist nl;
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId x1 = nl.add_gate(GateType::kBuf, "x1", {a});
  const GateId b = nl.add_gate(GateType::kBuf, "b", {a});
  const GateId c = nl.add_gate(GateType::kBuf, "c", {b});
  const GateId y = nl.add_gate(GateType::kAnd, "y", {x1, c});
  nl.mark_output(y);
  nl.finalize();
  const CircuitGraph g(nl);
  std::vector<double> dist(g.num_nets(), 1.0);
  dist[x1] = 10.0;  // net driven by x1 is congested
  const ShortestPathTree t = dijkstra(g, a, dist);
  EXPECT_DOUBLE_EQ(t.distance[y], 3.0);  // a->b->c->y
  EXPECT_EQ(g.branch(t.parent_branch[y]).source, c);
}

TEST(DijkstraTest, UnreachableStaysInfinite) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = NOT(b)\n");
  const CircuitGraph g(nl);
  std::vector<double> dist(g.num_nets(), 1.0);
  const ShortestPathTree t = dijkstra(g, nl.find("a"), dist);
  EXPECT_TRUE(std::isinf(t.distance[nl.find("z")]));
  EXPECT_EQ(t.parent_branch[nl.find("z")], ShortestPathTree::kNoBranch);
}

TEST(DijkstraTest, TreeNetsAreDistinct) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  std::vector<double> dist(g.num_nets(), 1.0);
  const ShortestPathTree t = dijkstra(g, nl.find("G0"), dist);
  const std::vector<NetId> nets = tree_nets(g, t);
  std::set<NetId> uniq(nets.begin(), nets.end());
  EXPECT_EQ(uniq.size(), nets.size());
  // Parent branches: one per reached node except the source.
  EXPECT_LE(nets.size(), t.reached.size() - 1);
}

TEST(DijkstraTest, RejectsBadWeights) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  std::vector<double> wrong_size(3, 1.0);
  EXPECT_THROW(dijkstra(g, 0, wrong_size), std::invalid_argument);
  std::vector<double> negative(g.num_nets(), 1.0);
  negative[5] = -1.0;
  EXPECT_THROW(dijkstra(g, nl.find("G0"), negative), std::invalid_argument);
}

}  // namespace
}  // namespace merced
