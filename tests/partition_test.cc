#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "circuits/registry.h"
#include "circuits/s27.h"
#include "flow/saturate_network.h"
#include "graph/circuit_graph.h"
#include "graph/scc.h"
#include "netlist/bench_io.h"
#include "partition/assign_cbit.h"
#include "partition/clustering.h"
#include "partition/make_group.h"

namespace merced {
namespace {

struct Pipeline {
  Netlist netlist;
  CircuitGraph graph;
  SccInfo sccs;
  SaturationResult sat;

  explicit Pipeline(Netlist nl, std::uint64_t seed = 1)
      : netlist(std::move(nl)), graph(netlist), sccs(find_sccs(graph)), sat([&] {
          SaturateParams p;
          p.seed = seed;
          return saturate_network(graph, p);
        }()) {}
};

// Puts every non-PI node in one cluster (for unit-testing the counters).
Clustering whole_circuit_cluster(const CircuitGraph& g) {
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters.emplace_back();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.is_pi(v)) {
      c.cluster_of[v] = 0;
      c.clusters[0].push_back(v);
    }
  }
  return c;
}

// ---------------------------------------------------------- input count ---

TEST(ClusteringTest, WholeCircuitInputsArePIsAndDffs) {
  // With everything in one cluster, the CUT inputs are exactly the PI nets
  // and DFF-output nets that drive gates (no cut nets).
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  c.validate(g);
  // s27: 4 PIs + 3 DFFs, all drive gates.
  EXPECT_EQ(input_count(g, c, 0), 7u);
  EXPECT_TRUE(cut_nets(g, c).empty());
}

TEST(ClusteringTest, SingletonGateInputsAreItsFanins) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.is_pi(v)) continue;
    c.cluster_of[v] = static_cast<std::int32_t>(c.clusters.size());
    c.clusters.push_back({v});
  }
  for (std::size_t i = 0; i < c.count(); ++i) {
    const NodeId v = c.clusters[i][0];
    if (g.is_register(v)) {
      EXPECT_EQ(input_count(g, c, i), 0u) << "registers consume no test inputs";
    } else {
      // Distinct fanin nets of the gate.
      std::set<NetId> fanin_nets;
      for (BranchId b : g.in_branches(v)) fanin_nets.insert(g.branch(b).net);
      EXPECT_EQ(input_count(g, c, i), fanin_nets.size());
    }
  }
}

TEST(ClusteringTest, DffInsideClusterCountsAsInput) {
  // q is inside the cluster with the gate it feeds: still a CUT input
  // (the register becomes the pattern generator in test mode).
  const Netlist nl =
      parse_bench("INPUT(a)\nOUTPUT(y)\nx = AND(a, q)\nq = DFF(x)\ny = NOT(x)\n");
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  EXPECT_EQ(input_count(g, c, 0), 2u);  // a and q
}

TEST(ClusteringTest, CutNetIdentification) {
  // Two clusters: {x} and {y,z}; net x crosses (gate-to-gate) => 1 cut.
  const Netlist nl = parse_bench(
      "INPUT(a)\nOUTPUT(z)\nx = NOT(a)\ny = NOT(x)\nz = AND(x, y)\n");
  const CircuitGraph g(nl);
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters = {{nl.find("x")}, {nl.find("y"), nl.find("z")}};
  c.cluster_of[nl.find("x")] = 0;
  c.cluster_of[nl.find("y")] = 1;
  c.cluster_of[nl.find("z")] = 1;
  const auto cuts = cut_nets(g, c);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(g.driver(cuts[0]), nl.find("x"));
}

TEST(ClusteringTest, DffBoundaryIsNotACut) {
  // Crossing net lands on a DFF's D pin: a register already exists there.
  const Netlist nl =
      parse_bench("INPUT(a)\nOUTPUT(y)\nx = NOT(a)\nq = DFF(x)\ny = NOT(q)\n");
  const CircuitGraph g(nl);
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters = {{nl.find("x")}, {nl.find("q"), nl.find("y")}};
  c.cluster_of[nl.find("x")] = 0;
  c.cluster_of[nl.find("q")] = 1;
  c.cluster_of[nl.find("y")] = 1;
  EXPECT_TRUE(cut_nets(g, c).empty());
  // But the DFF output is an input of cluster 1.
  EXPECT_EQ(input_count(g, c, 1), 1u);
}

TEST(ClusteringTest, ValidateCatchesCorruption) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  Clustering c = whole_circuit_cluster(g);
  c.cluster_of[nl.find("G8")] = 5;  // out of range
  EXPECT_THROW(c.validate(g), std::runtime_error);
}

// ------------------------------------------------------------ make_group ---

TEST(MakeGroupTest, RespectsInputConstraint) {
  for (std::size_t lk : {3u, 4u, 6u, 8u}) {
    Pipeline p(make_s27(), 11);
    MakeGroupParams mg;
    mg.lk = lk;
    const MakeGroupResult r = make_group(p.graph, p.sccs, p.sat, mg);
    ASSERT_TRUE(r.feasible) << "lk=" << lk;
    r.clustering.validate(p.graph);
    for (std::size_t i = 0; i < r.clustering.count(); ++i) {
      EXPECT_LE(input_count(p.graph, r.clustering, i), lk) << "lk=" << lk;
    }
  }
}

TEST(MakeGroupTest, ClustersPartitionAllNonPiNodes) {
  Pipeline p(make_s27());
  MakeGroupParams mg;
  mg.lk = 3;
  const MakeGroupResult r = make_group(p.graph, p.sccs, p.sat, mg);
  std::size_t covered = 0;
  for (const auto& cl : r.clustering.clusters) covered += cl.size();
  std::size_t non_pi = 0;
  for (NodeId v = 0; v < p.graph.num_nodes(); ++v) {
    if (!p.graph.is_pi(v)) ++non_pi;
  }
  EXPECT_EQ(covered, non_pi);
}

TEST(MakeGroupTest, LargerLkCutsFewerNets) {
  // Paper §4.2: a bigger CBIT accommodates more nets, reducing cut count.
  Pipeline p(load_benchmark("s510"), 5);
  std::size_t cuts_small = 0, cuts_large = 0;
  {
    MakeGroupParams mg;
    mg.lk = 8;
    const auto r = make_group(p.graph, p.sccs, p.sat, mg);
    cuts_small = cut_nets(p.graph, r.clustering).size();
  }
  {
    MakeGroupParams mg;
    mg.lk = 24;
    const auto r = make_group(p.graph, p.sccs, p.sat, mg);
    cuts_large = cut_nets(p.graph, r.clustering).size();
  }
  EXPECT_LE(cuts_large, cuts_small);
}

TEST(MakeGroupTest, BetaOneLimitsSccCuts) {
  // With beta=1 the cuts inside each SCC may not exceed its register count.
  Pipeline p(load_benchmark("s510"), 5);
  MakeGroupParams mg;
  mg.lk = 8;
  mg.beta = 1;
  const MakeGroupResult r = make_group(p.graph, p.sccs, p.sat, mg);
  const CutReport report = make_cut_report(p.graph, r.clustering, p.sccs);
  for (std::size_t s = 0; s < p.sccs.count(); ++s) {
    EXPECT_LE(report.cuts_per_scc[s], static_cast<std::size_t>(p.sccs.dff_count[s]))
        << "SCC " << s;
  }
}

TEST(MakeGroupTest, RejectsBadParams) {
  Pipeline p(make_s27());
  MakeGroupParams mg;
  mg.beta = 0;
  EXPECT_THROW(make_group(p.graph, p.sccs, p.sat, mg), std::invalid_argument);
  mg = MakeGroupParams{};
  mg.lk = 0;
  EXPECT_THROW(make_group(p.graph, p.sccs, p.sat, mg), std::invalid_argument);
}

// ----------------------------------------------------------- assign_cbit ---

TEST(AssignCbitTest, MergedPartitionsStillMeetConstraint) {
  Pipeline p(make_s27(), 27);
  MakeGroupParams mg;
  mg.lk = 3;
  const MakeGroupResult groups = make_group(p.graph, p.sccs, p.sat, mg);
  const AssignCbitResult r = assign_cbit(p.graph, groups.clustering, mg.lk);
  r.partitions.validate(p.graph);
  ASSERT_EQ(r.input_counts.size(), r.partitions.count());
  for (std::size_t i = 0; i < r.partitions.count(); ++i) {
    EXPECT_LE(r.input_counts[i], 3u);
    EXPECT_EQ(r.input_counts[i], input_count(p.graph, r.partitions, i))
        << "cached iota must match recomputation";
  }
}

TEST(AssignCbitTest, NeverIncreasesClusterCount) {
  Pipeline p(load_benchmark("s510"), 2);
  MakeGroupParams mg;
  mg.lk = 16;
  const MakeGroupResult groups = make_group(p.graph, p.sccs, p.sat, mg);
  const AssignCbitResult r = assign_cbit(p.graph, groups.clustering, mg.lk);
  EXPECT_LE(r.partitions.count(), groups.clustering.count());
  EXPECT_EQ(r.partitions.count() + r.merges_performed, groups.clustering.count());
}

TEST(AssignCbitTest, MergingNeverAddsCuts) {
  Pipeline p(load_benchmark("s510"), 2);
  MakeGroupParams mg;
  mg.lk = 16;
  const MakeGroupResult groups = make_group(p.graph, p.sccs, p.sat, mg);
  const std::size_t cuts_before = cut_nets(p.graph, groups.clustering).size();
  const AssignCbitResult r = assign_cbit(p.graph, groups.clustering, mg.lk);
  EXPECT_LE(cut_nets(p.graph, r.partitions).size(), cuts_before);
}

TEST(AssignCbitTest, NoEmptyPartitions) {
  Pipeline p(make_s27(), 27);
  MakeGroupParams mg;
  mg.lk = 3;
  const MakeGroupResult groups = make_group(p.graph, p.sccs, p.sat, mg);
  const AssignCbitResult r = assign_cbit(p.graph, groups.clustering, mg.lk);
  for (const auto& part : r.partitions.clusters) EXPECT_FALSE(part.empty());
}

// Parameterized sweep: the PIC invariant holds for every (circuit, lk).
class PicSweep : public ::testing::TestWithParam<std::tuple<const char*, std::size_t>> {};

TEST_P(PicSweep, InvariantHolds) {
  const auto [name, lk] = GetParam();
  Pipeline p(load_benchmark(name), 99);
  MakeGroupParams mg;
  mg.lk = lk;
  const MakeGroupResult groups = make_group(p.graph, p.sccs, p.sat, mg);
  ASSERT_TRUE(groups.feasible);
  const AssignCbitResult r = assign_cbit(p.graph, groups.clustering, lk);
  r.partitions.validate(p.graph);
  for (std::size_t i = 0; i < r.partitions.count(); ++i) {
    EXPECT_LE(input_count(p.graph, r.partitions, i), lk);
  }
  // Disjoint cover.
  std::size_t covered = 0;
  for (const auto& cl : r.partitions.clusters) covered += cl.size();
  std::size_t non_pi = 0;
  for (NodeId v = 0; v < p.graph.num_nodes(); ++v) {
    if (!p.graph.is_pi(v)) ++non_pi;
  }
  EXPECT_EQ(covered, non_pi);
}

INSTANTIATE_TEST_SUITE_P(
    CircuitsAndConstraints, PicSweep,
    ::testing::Combine(::testing::Values("s27", "s510", "s420.1", "s641"),
                       ::testing::Values(std::size_t{8}, std::size_t{16},
                                         std::size_t{24})),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      std::replace(name.begin(), name.end(), '.', '_');
      return name + "_lk" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace merced
