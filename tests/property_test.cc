// Property-based conformance tests over random generated netlists.
//
// The stochastic kernels (Saturate_Network, Make_Group) and the new
// parallel runtime are exactly the code that aggressive refactoring breaks
// silently: a wrong-but-plausible cut set still compiles, still yields
// partitions, still prints tables. These tests pin the invariants that must
// survive any rewrite:
//
//  * serial vs parallel compile picks the identical cut ranking for a
//    fixed seed (thread-count independence of the multi-start merge);
//  * sharded fault simulation equals the single-thread result
//    fault-for-fault;
//  * every partition of a feasible result satisfies ι(π) ≤ l_k and the
//    reported input counts match a from-scratch recount;
//  * the retimed netlist is cycle-accurate-equivalent to the original
//    over random stimulus;
//  * multi-start never does worse than the single-start baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "circuits/generator.h"
#include "core/merced.h"
#include "core/ppet_session.h"
#include "flow/saturate_network.h"
#include "graph/circuit_graph.h"
#include "partition/clustering.h"
#include "retiming/retime_graph.h"
#include "retiming/retimed_netlist.h"
#include "sim/fault.h"
#include "sim/fault_sim.h"
#include "sim/simulator.h"

namespace merced {
namespace {

/// Deterministic random spec: every field is drawn from `seed` alone, so a
/// failing instance reproduces from its test parameter.
SyntheticSpec random_spec(std::uint64_t seed) {
  std::mt19937_64 rng(0xabcdef1234567890ULL ^ (seed * 0x9e3779b97f4a7c15ULL));
  auto in = [&](std::size_t lo, std::size_t hi) { return lo + rng() % (hi - lo + 1); };
  SyntheticSpec s;
  s.name = "prop" + std::to_string(seed);
  s.num_pis = in(4, 12);
  s.num_dffs = in(3, 16);
  s.num_gates = in(30, 120);
  s.num_invs = in(5, 30);
  s.target_area = (s.num_gates + s.num_invs) * in(3, 5);
  s.scc_dff_fraction = static_cast<double>(in(5, 10)) / 10.0;
  s.seed = seed * 7 + 1;
  return s;
}

std::vector<std::vector<bool>> random_stream(std::size_t cycles, std::size_t width,
                                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<bool>> stream(cycles, std::vector<bool>(width));
  for (auto& v : stream) {
    for (std::size_t i = 0; i < width; ++i) v[i] = rng() & 1;
  }
  return stream;
}

class RandomCircuitProperty : public ::testing::TestWithParam<std::uint64_t> {};

// --------------------------------------------- multi-start determinism ---

TEST_P(RandomCircuitProperty, SerialAndParallelCompilePickIdenticalCuts) {
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  MercedConfig config;
  config.lk = 8;
  config.multi_start = 4;

  config.jobs = 1;
  const MercedResult serial = compile(nl, config);
  config.jobs = 8;
  const MercedResult parallel = compile(nl, config);

  EXPECT_EQ(serial.chosen_start, parallel.chosen_start);
  EXPECT_EQ(serial.cut_net_ids, parallel.cut_net_ids);
  EXPECT_EQ(serial.partition_inputs, parallel.partition_inputs);
  EXPECT_EQ(serial.feasible, parallel.feasible);
  EXPECT_EQ(serial.cuts.nets_cut, parallel.cuts.nets_cut);
  EXPECT_EQ(serial.cuts.cut_nets_on_scc, parallel.cuts.cut_nets_on_scc);
  EXPECT_EQ(serial.partitions.cluster_of, parallel.partitions.cluster_of);
}

// ----------------------------------------------- partition invariants ---

TEST_P(RandomCircuitProperty, PartitionsSatisfyInputConstraint) {
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  MercedConfig config;
  config.lk = 12;
  config.multi_start = 2;
  const PreparedCircuit prepared(nl, config.flow, config.multi_start, config.jobs);
  const MercedResult r = compile(prepared, config);

  r.partitions.validate(prepared.graph);
  ASSERT_EQ(r.partition_inputs.size(), r.partitions.count());
  for (std::size_t ci = 0; ci < r.partitions.count(); ++ci) {
    // Reported ι must match a from-scratch recount ...
    EXPECT_EQ(r.partition_inputs[ci], input_count(prepared.graph, r.partitions, ci));
    // ... and a feasible result must honour Eq. 5 on every partition.
    if (r.feasible) {
      EXPECT_LE(r.partition_inputs[ci], config.lk);
    }
  }
}

TEST_P(RandomCircuitProperty, MultiStartNeverWorseThanSingleStart) {
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  MercedConfig config;
  config.lk = 10;
  config.multi_start = 1;
  const MercedResult single = compile(nl, config);
  config.multi_start = 4;
  const MercedResult multi = compile(nl, config);

  // Start 0 of the multi-start sweep IS the single-start candidate, so the
  // merge can only improve on it under the documented order.
  if (single.feasible) {
    EXPECT_TRUE(multi.feasible);
    EXPECT_LE(multi.cuts.nets_cut, single.cuts.nets_cut);
  }
}

// ------------------------------------------------ fault-sim sharding ---

TEST_P(RandomCircuitProperty, ShardedFaultSimEqualsSingleThread) {
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  const std::vector<Fault> faults = collapse_faults(nl, enumerate_faults(nl));
  const auto stream = random_stream(24, nl.inputs().size(), GetParam() * 31 + 5);
  const std::vector<bool> init(nl.dffs().size(), false);

  const FaultSimResult one = simulate_faults(nl, faults, stream, init, 1);
  for (std::size_t jobs : {2u, 4u, 8u}) {
    const FaultSimResult sharded = simulate_faults(nl, faults, stream, init, jobs);
    EXPECT_EQ(one.detected, sharded.detected) << "jobs=" << jobs;
    EXPECT_EQ(one.detect_cycle, sharded.detect_cycle) << "jobs=" << jobs;
    EXPECT_EQ(one.num_detected, sharded.num_detected) << "jobs=" << jobs;
  }
}

// ------------------------------------------------ retiming equivalence ---

TEST_P(RandomCircuitProperty, RetimedNetlistIsCycleAccurate) {
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  MercedConfig config;
  const PreparedCircuit prepared(nl, config.flow);
  const MercedResult r = compile(prepared, config);

  const RetimeGraph rgraph(prepared.graph);
  const RetimedCircuit rt = apply_retiming(prepared.graph, rgraph, r.retiming.rho);

  std::int32_t max_depth = 0;
  for (const auto& o : rt.origins) max_depth = std::max(max_depth, o.depth);
  const std::size_t warmup_len = static_cast<std::size_t>(max_depth) + 4;

  std::mt19937_64 rng(GetParam() * 131 + 7);
  const std::size_t n_in = nl.inputs().size();
  std::vector<std::vector<bool>> warmup(warmup_len, std::vector<bool>(n_in));
  for (auto& v : warmup) {
    for (std::size_t i = 0; i < n_in; ++i) v[i] = rng() & 1;
  }
  const std::vector<bool> init(nl.dffs().size(), false);
  const std::vector<bool> rt_state = compute_retimed_initial_state(nl, rt, init, warmup);

  Simulator orig(nl);
  orig.set_state(init);
  for (const auto& v : warmup) orig.step(v);
  Simulator retimed(rt.netlist);
  retimed.set_state(rt_state);

  for (int cycle = 0; cycle < 48; ++cycle) {
    std::vector<bool> in(n_in);
    for (std::size_t i = 0; i < n_in; ++i) in[i] = rng() & 1;
    orig.step(in);
    retimed.step(in);
    ASSERT_EQ(orig.output_values(), retimed.output_values()) << "cycle " << cycle;
  }
}

// --------------------------------------------- checker-vs-compiler ---

TEST_P(RandomCircuitProperty, CompiledArtifactPassesStaticVerification) {
  // Cross-oracle: the static checker (src/verify) recomputes every claim
  // with independent traversals, so compiler and checker can only agree on
  // a random circuit if both are right (or share a bug — which the
  // verify_test mutation suite rules out on the checker side). Run both
  // serial and threaded compiles: the artifact must verify clean either way.
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  MercedConfig config;
  config.lk = 10;
  config.multi_start = 3;
  for (std::size_t jobs : {1u, 8u}) {
    config.jobs = jobs;
    const MercedResult r = compile(nl, config);
    const verify::Report rep = verify_result(nl, r, config);
    EXPECT_EQ(rep.errors(), 0u) << "jobs=" << jobs
        << (rep.findings.empty()
                ? std::string()
                : ": " + verify::format_diagnostic(rep.findings.front()));
  }
}

// ------------------------------------------------- session jobs sweep ---

TEST_P(RandomCircuitProperty, SessionSignaturesIndependentOfJobs) {
  const Netlist nl = generate_circuit(random_spec(GetParam()));
  MercedConfig config;
  const PreparedCircuit prepared(nl, config.flow);
  const MercedResult r = compile(prepared, config);
  if (!r.feasible) GTEST_SKIP() << "infeasible partition; session needs ι ≤ 32";

  const PpetSession serial(prepared.graph, r, 16, 1);
  const PpetSession threaded(prepared.graph, r, 16, 8);
  const SessionResult a = serial.run();
  const SessionResult b = threaded.run();
  EXPECT_EQ(a.signatures, b.signatures);
  EXPECT_EQ(a.scan_stream, b.scan_stream);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
}

INSTANTIATE_TEST_SUITE_P(RandomNetlists, RandomCircuitProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ------------------------------------------------------- seed mapping ---

TEST(MultiStartSeedTest, StartZeroKeepsBaseSeed) {
  EXPECT_EQ(multi_start_seed(42, 0), 42u);
  EXPECT_EQ(multi_start_seed(0x9e3779b97f4a7c15ULL, 0), 0x9e3779b97f4a7c15ULL);
}

TEST(MultiStartSeedTest, StartsAreDistinctAndStable) {
  const std::uint64_t base = 0x12345678ULL;
  std::vector<std::uint64_t> seeds;
  for (std::size_t k = 0; k < 16; ++k) seeds.push_back(multi_start_seed(base, k));
  auto sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "derived seeds must be pairwise distinct";
  // Regression-pin the mapping itself: changing it silently re-seeds every
  // multi-start experiment in the repo.
  EXPECT_EQ(multi_start_seed(base, 1), multi_start_seed(base, 1));
  EXPECT_NE(multi_start_seed(base, 1), base + 1);
}

TEST(MultiStartSaturateTest, CandidateZeroMatchesSingleRun) {
  const Netlist nl = generate_circuit(random_spec(9));
  const CircuitGraph g(nl);
  SaturateParams params;
  const SaturationResult lone = saturate_network(g, params);
  ThreadPool pool(4);
  const auto many = saturate_network_multistart(g, params, 3, pool);
  ASSERT_EQ(many.size(), 3u);
  EXPECT_EQ(many[0].flow, lone.flow);
  EXPECT_EQ(many[0].iterations, lone.iterations);
  EXPECT_NE(many[1].flow, lone.flow);  // decorrelated (overwhelmingly likely)
}

}  // namespace
}  // namespace merced
