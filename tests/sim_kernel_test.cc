// Conformance and performance-contract tests for the event-driven
// pseudo-exhaustive coverage kernels (sim/cone.{h,cc}, sim/cone_simd.cc).
//
// The kernels' promises, each pinned here:
//  * fault-for-fault equality with the naive re-evaluate-everything oracle
//    on random compiled CUTs and on hand-built cones (wide gates, MUX,
//    XOR trees, constants, redundant logic);
//  * every SIMD backend this host supports (64/256/512-bit lane words)
//    produces a bit-identical CoverageResult — same detected set, same
//    undetected order — including on ι < 6 padded-lane cones;
//  * bit-identical CoverageResult for every intra-CUT sharding width
//    (--jobs 1/2/8) on the work-stealing sweep;
//  * zero heap allocation in steady state when a Workspace is reused, for
//    the scalar probe path and for the SIMD kernel at every width (checked
//    both by a global operator-new counter and by workspace capacity
//    stability);
//  * PpetSession::measure_coverage == per-cone exhaustive_coverage, at
//    every SimdWidth and jobs value.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuits/generator.h"
#include "core/merced.h"
#include "core/ppet_session.h"
#include "graph/circuit_graph.h"
#include "netlist/bench_io.h"
#include "sim/cone.h"
#include "sim/fault.h"
#include "sim/simd.h"

// ------------------------------------------------- allocation counting ---
// Global operator new replacement: counts every allocation so the no-alloc
// guarantee of the workspace path is directly observable. Only the deltas
// taken inside tests matter; gtest's own allocations happen outside the
// measured windows.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// GCC flags free() on memory from the replaced operator new as a mismatched
// pair; both sides are malloc/free here, so the pairing is consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace merced {
namespace {

/// Wraps every non-PI node of a netlist into one cluster, making the whole
/// combinational part a single CUT whose inputs are the PI nets.
Clustering whole_circuit_cluster(const CircuitGraph& g) {
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters.emplace_back();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.is_pi(v)) {
      c.cluster_of[v] = 0;
      c.clusters[0].push_back(v);
    }
  }
  return c;
}

void expect_same_coverage(const CoverageResult& kernel, const CoverageResult& naive,
                          const std::string& context) {
  EXPECT_EQ(kernel.total_faults, naive.total_faults) << context;
  EXPECT_EQ(kernel.detected, naive.detected) << context;
  ASSERT_EQ(kernel.undetected.size(), naive.undetected.size()) << context;
  for (std::size_t i = 0; i < kernel.undetected.size(); ++i) {
    EXPECT_EQ(kernel.undetected[i], naive.undetected[i]) << context << " fault " << i;
  }
}

SyntheticSpec kernel_spec(std::uint64_t seed) {
  std::mt19937_64 rng(0x5117e5eedULL ^ (seed * 0x9e3779b97f4a7c15ULL));
  auto in = [&](std::size_t lo, std::size_t hi) { return lo + rng() % (hi - lo + 1); };
  SyntheticSpec s;
  s.name = "kern" + std::to_string(seed);
  s.num_pis = in(4, 10);
  s.num_dffs = in(3, 12);
  s.num_gates = in(30, 100);
  s.num_invs = in(5, 25);
  s.target_area = (s.num_gates + s.num_invs) * in(3, 5);
  s.scc_dff_fraction = static_cast<double>(in(5, 10)) / 10.0;
  s.seed = seed * 13 + 5;
  return s;
}

class RandomConeKernel : public ::testing::TestWithParam<std::uint64_t> {};

// Event-driven coverage equals the naive oracle fault-for-fault on every
// CUT of a compiled random circuit (fault sites and stuck values vary with
// the circuit: stems and branch pins, s-a-0 and s-a-1).
TEST_P(RandomConeKernel, MatchesNaiveOracleOnCompiledCuts) {
  const Netlist nl = generate_circuit(kernel_spec(GetParam()));
  MercedConfig config;
  config.lk = 9;
  const MercedResult plan = compile(nl, config);
  const CircuitGraph graph(nl);

  std::size_t cones_checked = 0;
  for (std::size_t ci = 0; ci < plan.partitions.count(); ++ci) {
    const ConeSimulator cone(graph, plan.partitions, ci);
    if (cone.gates().empty() || cone.cut_inputs().empty()) continue;
    CoverageOptions kernel_opt;
    CoverageOptions naive_opt;
    naive_opt.naive = true;
    expect_same_coverage(exhaustive_coverage(cone, kernel_opt),
                         exhaustive_coverage(cone, naive_opt),
                         "seed " + std::to_string(GetParam()) + " cluster " +
                             std::to_string(ci));
    ++cones_checked;
  }
  EXPECT_GT(cones_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomCones, RandomConeKernel,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Hand-built cone exercising every gate shape the kernel evaluates: wide
// AND/OR (late-dropping pin faults), XOR tree, MUX, constants, and a
// provably redundant structure (z = OR(x, NOT(x)) is constant 1).
TEST(SimKernelTest, HandBuiltConeMatchesOracleIncludingRedundancy) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\n"
      "OUTPUT(y)\nOUTPUT(z)\nOUTPUT(w)\n"
      "wide = AND(a, b, c, d, e, f, g)\n"
      "xn = NOT(a)\n"
      "red = OR(a, xn)\n"
      "k1 = CONST1()\n"
      "par = XOR(b, c, d, e)\n"
      "m = MUX(a, par, wide)\n"
      "y = NOR(m, red)\n"
      "z = OR(red, k1)\n"
      "w = XNOR(wide, par)\n");
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  ASSERT_EQ(cone.cut_inputs().size(), 7u);

  CoverageOptions kernel_opt;
  CoverageOptions naive_opt;
  naive_opt.naive = true;
  const CoverageResult kernel = exhaustive_coverage(cone, kernel_opt);
  const CoverageResult naive = exhaustive_coverage(cone, naive_opt);
  expect_same_coverage(kernel, naive, "hand-built cone");
  // z is constant 1, so z stuck-at-1 must be reported combinationally
  // redundant by both paths.
  EXPECT_FALSE(kernel.undetected.empty());
}

// CUTs narrower than 6 inputs pad the 64-lane word with replayed patterns;
// the masked kernel and the masked oracle must agree there too (the lane
// contract of cone.h).
TEST(SimKernelTest, NarrowConeLaneMaskingMatchesOracle) {
  EXPECT_EQ(lane_mask(0), 0x1u);
  EXPECT_EQ(lane_mask(3), 0xFFu);
  EXPECT_EQ(lane_mask(5), 0xFFFFFFFFu);
  EXPECT_EQ(lane_mask(6), ~std::uint64_t{0});
  EXPECT_EQ(lane_mask(22), ~std::uint64_t{0});

  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n"
      "t = AND(a, b)\nu = XOR(t, c)\ny = NAND(u, a)\nz = NOR(u, b)\n");
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  ASSERT_LT(cone.cut_inputs().size(), 6u);
  CoverageOptions naive_opt;
  naive_opt.naive = true;
  expect_same_coverage(exhaustive_coverage(cone), exhaustive_coverage(cone, naive_opt),
                       "narrow cone");
}

// Intra-CUT fault sharding is bit-identical across jobs counts. A single
// wide-ish CUT (whole circuit as one cluster, ι = PIs + DFF outputs = 12)
// ensures the fault-range split is actually exercised.
TEST(SimKernelTest, IntraCutShardingIsDeterministic) {
  SyntheticSpec spec = kernel_spec(42);
  spec.num_pis = 6;
  spec.num_dffs = 6;
  spec.num_gates = 120;
  spec.num_invs = 20;
  const Netlist nl = generate_circuit(spec);
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  const std::size_t n = cone.cut_inputs().size();
  ASSERT_LE(n, 12u);
  ASSERT_GE(cone.cluster_faults().size(), 100u);

  CoverageOptions opt;
  opt.max_inputs = n;  // whole circuit as one CUT; allow its actual width
  opt.jobs = 1;
  const CoverageResult r1 = exhaustive_coverage(cone, opt);
  for (std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    opt.jobs = jobs;
    expect_same_coverage(exhaustive_coverage(cone, opt), r1,
                         "jobs " + std::to_string(jobs));
  }

  // The multi-chunk path surfaces scheduler diagnostics; the serial path
  // leaves them zero. Neither is part of the coverage verdict (and
  // expect_same_coverage above already ignored them).
  EXPECT_EQ(r1.sched.tasks_run, 0u);
  opt.jobs = 4;
  const CoverageResult sharded = exhaustive_coverage(cone, opt);
  EXPECT_GE(sharded.sched.tasks_run, 2u);
  EXPECT_LE(sharded.sched.tasks_stolen, sharded.sched.tasks_run);
}

// The workspace eval path computes the same outputs as the allocating path,
// and performs zero heap allocation in steady state.
TEST(SimKernelTest, WorkspaceEvalIsAllocationFreeInSteadyState) {
  const Netlist nl = generate_circuit(kernel_spec(7));
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  const std::size_t n = cone.cut_inputs().size();
  const std::vector<Fault> faults = cone.cluster_faults();
  ASSERT_FALSE(faults.empty());
  const std::uint64_t mask = lane_mask(n);

  ConeSimulator::Workspace ws;
  std::vector<std::uint64_t> in(n);

  // Warm-up: first contact sizes the workspace.
  fill_batch_inputs(n, 0, in);
  (void)cone.eval(in, ws);
  for (const Fault& f : faults) (void)cone.fault_observable(ws, f, mask);
  const std::size_t warm_capacity = ws.capacity_bytes();

  // Steady state: vary the batch and sweep every fault; equality with the
  // allocating eval checked as we go.
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t batch = 0; batch < 16; ++batch) {
    fill_batch_inputs(n, batch % (std::uint64_t{1} << (n > 6 ? n - 6 : 0)), in);
    (void)cone.eval(in, ws);
    for (const Fault& f : faults) (void)cone.fault_observable(ws, f, mask);
  }
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "eval/fault_observable allocated on the heap";
  EXPECT_EQ(ws.capacity_bytes(), warm_capacity);

  // Output equality of the two eval forms (and faulty-machine injection).
  fill_batch_inputs(n, 1, in);
  const auto ws_out = cone.eval(in, ws, &faults[0]);
  const auto alloc_out = cone.eval(in, &faults[0]);
  ASSERT_EQ(ws_out.size(), alloc_out.size());
  for (std::size_t o = 0; o < ws_out.size(); ++o) EXPECT_EQ(ws_out[o], alloc_out[o]);
}

// The width model itself: lane/word arithmetic, the generalized lane-mask
// contract (word 0 must equal the scalar kernel's lane_mask, wider words
// are all-ones exactly when the CUT has enough inputs to fill them), and
// the --simd / MERCED_SIMD parsing surface.
TEST(SimdWidthTest, LaneAndWordCounts) {
  EXPECT_EQ(simd_lanes(SimdWidth::k64), 64u);
  EXPECT_EQ(simd_lanes(SimdWidth::k256), 256u);
  EXPECT_EQ(simd_lanes(SimdWidth::k512), 512u);
  EXPECT_EQ(simd_words(SimdWidth::k64), 1u);
  EXPECT_EQ(simd_words(SimdWidth::k256), 4u);
  EXPECT_EQ(simd_words(SimdWidth::k512), 8u);
  EXPECT_TRUE(simd_width_supported(SimdWidth::k64));
  EXPECT_TRUE(simd_width_supported(SimdWidth::kAuto));  // always resolves
}

TEST(SimdWidthTest, WideLaneMaskGeneralizesScalarContract) {
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, std::size_t{5},
                        std::size_t{6}, std::size_t{8}, std::size_t{12}}) {
    EXPECT_EQ(wide_lane_mask_word(n, 0), lane_mask(n)) << "n " << n;
  }
  // n = 7 fills 128 lanes: words 0..1 valid, the rest of a 512-bit word
  // replay patterns and are masked out.
  EXPECT_EQ(wide_lane_mask_word(7, 1), ~std::uint64_t{0});
  EXPECT_EQ(wide_lane_mask_word(7, 2), 0u);
  EXPECT_EQ(wide_lane_mask_word(7, 7), 0u);
  // n >= 9 fills all 8 words of a 512-bit lane word.
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(wide_lane_mask_word(9, j), ~std::uint64_t{0}) << "word " << j;
  }
  EXPECT_EQ(wide_num_batches(4, 8), 1u);
  EXPECT_EQ(wide_num_batches(9, 8), 1u);
  EXPECT_EQ(wide_num_batches(12, 8), 8u);
  EXPECT_EQ(wide_num_batches(12, 1), 64u);
}

TEST(SimdWidthTest, FromStringAcceptsExactlyTheCliGrammar) {
  SimdWidth w = SimdWidth::k64;
  EXPECT_TRUE(simd_width_from_string("auto", w));
  EXPECT_EQ(w, SimdWidth::kAuto);
  EXPECT_TRUE(simd_width_from_string("64", w));
  EXPECT_EQ(w, SimdWidth::k64);
  EXPECT_TRUE(simd_width_from_string("256", w));
  EXPECT_EQ(w, SimdWidth::k256);
  EXPECT_TRUE(simd_width_from_string("512", w));
  EXPECT_EQ(w, SimdWidth::k512);
  for (const char* bad : {"", "0", "128", "avx2", "64 ", "Auto"}) {
    EXPECT_FALSE(simd_width_from_string(bad, w)) << "'" << bad << "'";
  }
}

TEST(SimdWidthTest, ResolveHonorsEnvAndRejectsMalformedEnv) {
  // Save the caller's MERCED_SIMD: the CI kernel matrix runs this binary
  // with the variable forced, and later tests must still see that value.
  const char* prior_env = ::getenv("MERCED_SIMD");
  const std::string prior = prior_env != nullptr ? prior_env : "";

  // A concrete width resolves to itself regardless of the environment.
  EXPECT_EQ(resolve_simd_width(SimdWidth::k64), SimdWidth::k64);

  ::setenv("MERCED_SIMD", "64", 1);
  EXPECT_EQ(resolve_simd_width(SimdWidth::kAuto), SimdWidth::k64);
  ::setenv("MERCED_SIMD", "not-a-width", 1);
  EXPECT_THROW(resolve_simd_width(SimdWidth::kAuto), std::invalid_argument);
  ::unsetenv("MERCED_SIMD");

  // Without the env override, auto resolves to the best supported width.
  EXPECT_EQ(resolve_simd_width(SimdWidth::kAuto), best_simd_width());
  EXPECT_TRUE(simd_width_supported(best_simd_width()));

  if (prior_env != nullptr) ::setenv("MERCED_SIMD", prior.c_str(), 1);
}

// Every supported SIMD backend produces the same CoverageResult as the
// naive oracle — same counts AND same undetected order — on cones spanning
// the interesting widths: ι < 6 (padded lanes at every word count), ι in
// [6, log2(W)) (some wide-word lanes padded), and ι ≥ log2(W) (all lanes
// distinct). The verdicts must be width-independent by construction.
TEST(SimKernelTest, AllSimdBackendsAreBitIdenticalToNaive) {
  const char* benches[] = {
      // ι = 3: every backend pads most lanes.
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n"
      "t = AND(a, b)\nu = XOR(t, c)\ny = NAND(u, a)\nz = NOR(u, b)\n",
      // ι = 7: 64-bit words are full, 256/512-bit words still pad.
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\n"
      "OUTPUT(y)\nOUTPUT(z)\nOUTPUT(w)\n"
      "wide = AND(a, b, c, d, e, f, g)\n"
      "xn = NOT(a)\n"
      "red = OR(a, xn)\n"
      "k1 = CONST1()\n"
      "par = XOR(b, c, d, e)\n"
      "m = MUX(a, par, wide)\n"
      "y = NOR(m, red)\n"
      "z = OR(red, k1)\n"
      "w = XNOR(wide, par)\n",
  };
  for (const char* bench : benches) {
    const Netlist nl = parse_bench(bench);
    const CircuitGraph g(nl);
    const Clustering c = whole_circuit_cluster(g);
    const ConeSimulator cone(g, c, 0);

    CoverageOptions naive_opt;
    naive_opt.naive = true;
    const CoverageResult naive = exhaustive_coverage(cone, naive_opt);
    for (SimdWidth w : {SimdWidth::k64, SimdWidth::k256, SimdWidth::k512}) {
      if (!simd_width_supported(w)) continue;
      CoverageOptions opt;
      opt.simd = w;
      expect_same_coverage(exhaustive_coverage(cone, opt), naive,
                           "width " + std::string(to_string(w)) + ", iota " +
                               std::to_string(cone.cut_inputs().size()));
    }
  }
}

// The same property on compiled random CUTs, where fault sites, stem
// branches and cone shapes vary beyond what hand-built netlists cover.
TEST(SimKernelTest, AllSimdBackendsMatchOnCompiledCuts) {
  const Netlist nl = generate_circuit(kernel_spec(21));
  MercedConfig config;
  config.lk = 9;
  const MercedResult plan = compile(nl, config);
  const CircuitGraph graph(nl);

  std::size_t cones_checked = 0;
  for (std::size_t ci = 0; ci < plan.partitions.count(); ++ci) {
    const ConeSimulator cone(graph, plan.partitions, ci);
    if (cone.gates().empty() || cone.cut_inputs().empty()) continue;
    CoverageOptions naive_opt;
    naive_opt.naive = true;
    const CoverageResult naive = exhaustive_coverage(cone, naive_opt);
    for (SimdWidth w : {SimdWidth::k64, SimdWidth::k256, SimdWidth::k512}) {
      if (!simd_width_supported(w)) continue;
      CoverageOptions opt;
      opt.simd = w;
      expect_same_coverage(exhaustive_coverage(cone, opt), naive,
                           "cluster " + std::to_string(ci) + " width " +
                               std::string(to_string(w)));
    }
    ++cones_checked;
  }
  EXPECT_GT(cones_checked, 0u);
}

// The SIMD range kernel requires a resolved width: kAuto (and, on hosts
// without the ISA, an unsupported width) is a caller bug, not a fallback.
TEST(SimKernelTest, SimdRangeKernelRejectsUnresolvedWidth) {
  const Netlist nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  const std::vector<Fault> faults = cone.cluster_faults();
  std::vector<std::uint8_t> detected(faults.size(), 0);
  ConeSimulator::Workspace ws;
  EXPECT_THROW(exhaustive_detect_range_simd(cone, faults, {0, faults.size()},
                                            detected.data(), SimdWidth::kAuto, ws),
               std::invalid_argument);
}

// Steady-state sweeps through the SIMD kernel allocate nothing, at every
// supported width: the first call sizes the workspace for (shape, width),
// after which repeated ranges reuse every buffer (including the per-range
// fault-group list).
TEST(SimKernelTest, SimdKernelIsAllocationFreeInSteadyState) {
  const Netlist nl = generate_circuit(kernel_spec(7));
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  const std::vector<Fault> faults = cone.cluster_faults();
  ASSERT_FALSE(faults.empty());

  for (SimdWidth w : {SimdWidth::k64, SimdWidth::k256, SimdWidth::k512}) {
    if (!simd_width_supported(w)) continue;
    ConeSimulator::Workspace ws;
    std::vector<std::uint8_t> detected(faults.size(), 0);

    // Warm-up sizes the wide arrays and the group list.
    exhaustive_detect_range_simd(cone, faults, {0, faults.size()}, detected.data(), w,
                                 ws);
    const std::size_t warm_capacity = ws.capacity_bytes();

    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    for (int rep = 0; rep < 4; ++rep) {
      std::fill(detected.begin(), detected.end(), std::uint8_t{0});
      exhaustive_detect_range_simd(cone, faults, {0, faults.size()}, detected.data(),
                                   w, ws);
      exhaustive_detect_range_simd(cone, faults, {0, faults.size() / 2},
                                   detected.data(), w, ws);
    }
    const std::size_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "SIMD kernel allocated at width " << to_string(w);
    EXPECT_EQ(ws.capacity_bytes(), warm_capacity) << "width " << to_string(w);
  }
}

TEST(SimKernelTest, FaultObservableRequiresPreparedWorkspace) {
  const Netlist nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);
  const ConeSimulator cone(g, c, 0);
  ConeSimulator::Workspace ws;
  const Fault f{cone.gates()[0], Fault::Site::kOutput, 0, true};
  EXPECT_THROW((void)cone.fault_observable(ws, f, lane_mask(1)), std::logic_error);
}

// PpetSession::measure_coverage equals per-cone exhaustive_coverage and is
// jobs-independent (two-level station x fault-range sharding).
TEST(SimKernelTest, SessionMeasureCoverageMatchesPerConeAndIsDeterministic) {
  const Netlist nl = generate_circuit(kernel_spec(11));
  MercedConfig config;
  config.lk = 9;
  const MercedResult plan = compile(nl, config);
  const CircuitGraph graph(nl);

  PpetSession session(graph, plan);
  const auto serial = session.measure_coverage();
  ASSERT_EQ(serial.size(), session.num_stations());

  for (std::size_t s = 0; s < session.num_stations(); ++s) {
    const ConeSimulator cone(graph, plan.partitions, session.station(s).partition_index);
    expect_same_coverage(serial[s], exhaustive_coverage(cone),
                         "station " + std::to_string(s));
  }

  for (std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    PpetSession wide(graph, plan, 16, jobs);
    const auto parallel = wide.measure_coverage();
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t s = 0; s < serial.size(); ++s) {
      expect_same_coverage(parallel[s], serial[s],
                           "jobs " + std::to_string(jobs) + " station " +
                               std::to_string(s));
    }
    // The sweep surfaces its scheduler diagnostics: every (station x
    // fault-range) shard ran exactly once.
    EXPECT_GT(wide.last_steal_stats().tasks_run, 0u);
    EXPECT_LE(wide.last_steal_stats().tasks_stolen,
              wide.last_steal_stats().tasks_run);
  }
}

// measure_coverage is also width-independent: pinning the session to each
// supported SIMD backend reproduces the auto-width result station for
// station, fault for fault.
TEST(SimKernelTest, SessionMeasureCoverageIsSimdWidthIndependent) {
  const Netlist nl = generate_circuit(kernel_spec(11));
  MercedConfig config;
  config.lk = 9;
  const MercedResult plan = compile(nl, config);
  const CircuitGraph graph(nl);

  PpetSession session(graph, plan);
  EXPECT_EQ(session.simd(), SimdWidth::kAuto);
  const auto auto_result = session.measure_coverage();

  for (SimdWidth w : {SimdWidth::k64, SimdWidth::k256, SimdWidth::k512}) {
    if (!simd_width_supported(w)) continue;
    PpetSession pinned(graph, plan, 16, 2);
    pinned.set_simd(w);
    EXPECT_EQ(pinned.simd(), w);
    const auto result = pinned.measure_coverage();
    ASSERT_EQ(result.size(), auto_result.size());
    for (std::size_t s = 0; s < result.size(); ++s) {
      expect_same_coverage(result[s], auto_result[s],
                           "width " + std::string(to_string(w)) + " station " +
                               std::to_string(s));
    }
  }
}

}  // namespace
}  // namespace merced
