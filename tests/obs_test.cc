#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace merced {
namespace {

// The collector is process-global; every test starts and ends quiescent,
// disabled, and empty so tests compose in any order.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disable();
    obs::reset();
  }
  void TearDown() override {
    obs::disable();
    obs::reset();
  }
};

std::string render_trace() {
  std::ostringstream os;
  obs::write_chrome_trace(os);
  return os.str();
}

TEST_F(ObsTest, SpanNestingRecordsDepthAndContainment) {
  obs::enable();
  {
    MERCED_SPAN("outer");
    { MERCED_SPAN("inner", 7); }
    { MERCED_SPAN("inner_plain"); }
  }
  obs::disable();

  const std::vector<obs::SpanEvent> evs = obs::span_events();
  ASSERT_EQ(evs.size(), 3u);
  // span_events() sorts by start time, so the enclosing span comes first.
  EXPECT_STREQ(evs[0].name, "outer");
  EXPECT_EQ(evs[0].depth, 0u);
  EXPECT_FALSE(evs[0].has_arg);
  EXPECT_STREQ(evs[1].name, "inner");
  EXPECT_EQ(evs[1].depth, 1u);
  ASSERT_TRUE(evs[1].has_arg);
  EXPECT_EQ(evs[1].arg, 7u);
  EXPECT_STREQ(evs[2].name, "inner_plain");
  EXPECT_EQ(evs[2].depth, 1u);
  EXPECT_FALSE(evs[2].has_arg);

  // All on the recording thread, and both children lie inside the parent.
  EXPECT_EQ(evs[1].tid, evs[0].tid);
  EXPECT_EQ(evs[2].tid, evs[0].tid);
  for (int i : {1, 2}) {
    EXPECT_GE(evs[i].start_ns, evs[0].start_ns);
    EXPECT_LE(evs[i].start_ns + evs[i].dur_ns, evs[0].start_ns + evs[0].dur_ns);
  }
}

TEST_F(ObsTest, SpansAttributeToTheRecordingThread) {
  obs::enable();
  std::thread worker([] { MERCED_SPAN("worker_span"); });
  worker.join();
  { MERCED_SPAN("main_span"); }
  obs::disable();

  const std::vector<obs::SpanEvent> evs = obs::span_events();
  ASSERT_EQ(evs.size(), 2u);
  const obs::SpanEvent* main_ev = nullptr;
  const obs::SpanEvent* worker_ev = nullptr;
  for (const obs::SpanEvent& e : evs) {
    if (std::string(e.name) == "main_span") main_ev = &e;
    if (std::string(e.name) == "worker_span") worker_ev = &e;
  }
  ASSERT_NE(main_ev, nullptr);
  ASSERT_NE(worker_ev, nullptr);
  EXPECT_NE(main_ev->tid, worker_ev->tid);
  // A fresh thread starts at depth 0 regardless of what main is doing.
  EXPECT_EQ(worker_ev->depth, 0u);
}

TEST_F(ObsTest, CountersAggregateExactlyAcrossEightThreads) {
  obs::enable();
  {
    ThreadPool pool(8);
    pool.parallel_for(1000, [](std::size_t i) {
      MERCED_COUNT(obs::Counter::kKernelEventsPopped, 1);
      MERCED_COUNT(obs::Counter::kKernelBatches, i % 3);
    });
  }
  obs::disable();

  EXPECT_EQ(obs::counter_value(obs::Counter::kKernelEventsPopped), 1000u);
  // sum of i % 3 over [0, 1000) = 333 full cycles of 0+1+2, plus 999 % 3 = 0.
  EXPECT_EQ(obs::counter_value(obs::Counter::kKernelBatches), 999u);
  // The pool's own instrumentation (satellite of the same layer) must agree.
  EXPECT_EQ(obs::counter_value(obs::Counter::kPoolParallelFors), 1u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kPoolTasksRun), 1000u);

  const std::vector<std::uint64_t> all = obs::counter_values();
  ASSERT_EQ(all.size(), obs::kNumCounters);
  EXPECT_EQ(all[static_cast<std::size_t>(obs::Counter::kKernelEventsPopped)], 1000u);
}

TEST_F(ObsTest, TraceJsonIsSchemaValidAndDeterministicModuloTimestamps) {
  const auto record = [] {
    obs::reset();
    obs::enable();
    {
      MERCED_SPAN("phase_a");
      { MERCED_SPAN("step", 1); }
      { MERCED_SPAN("step", 2); }
    }
    { MERCED_SPAN("phase_b"); }
    obs::disable();
    return render_trace();
  };
  const std::string doc_text1 = record();
  const std::string doc_text2 = record();

  const obs::JsonValue doc1 = obs::JsonValue::parse(doc_text1);
  const obs::JsonValue doc2 = obs::JsonValue::parse(doc_text2);
  EXPECT_EQ(obs::validate_trace_json(doc1), "");
  EXPECT_EQ(obs::validate_trace_json(doc2), "");

  // Two identical single-threaded recordings must agree on everything but
  // the clock: same events, same order, same tids/depths/args.
  const auto signature = [](const obs::JsonValue& doc) {
    std::ostringstream sig;
    for (const obs::JsonValue& ev : doc.find("traceEvents")->as_array()) {
      sig << ev.find("ph")->as_string() << "|" << ev.find("name")->as_string()
          << "|" << ev.find("tid")->as_number() << "|";
      if (const obs::JsonValue* args = ev.find("args")) {
        if (const obs::JsonValue* depth = args->find("depth")) {
          sig << depth->as_number();
        }
        sig << "|";
        if (const obs::JsonValue* idx = args->find("i")) sig << idx->as_number();
      }
      sig << "\n";
    }
    return sig.str();
  };
  EXPECT_EQ(signature(doc1), signature(doc2));
}

TEST_F(ObsTest, NullSinkRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  {
    MERCED_SPAN("ghost");
    MERCED_COUNT(obs::Counter::kKernelBatches, 5);
  }
  EXPECT_TRUE(obs::span_events().empty());
  for (std::uint64_t v : obs::counter_values()) EXPECT_EQ(v, 0u);

  // The trace document is still well-formed, just empty of "X" events.
  const obs::JsonValue doc = obs::JsonValue::parse(render_trace());
  EXPECT_EQ(obs::validate_trace_json(doc), "");
  for (const obs::JsonValue& ev : doc.find("traceEvents")->as_array()) {
    EXPECT_NE(ev.find("ph")->as_string(), "X");
  }
}

TEST_F(ObsTest, MetricsArtifactRoundTripsThroughValidator) {
  obs::enable();
  {
    MERCED_SPAN("phase_a");
    MERCED_COUNT(obs::Counter::kFlowIterations, 17);
  }
  { MERCED_SPAN("phase_a"); }
  obs::disable();

  obs::RunInfo run;
  run.tool = "obs_test";
  run.circuit = "none";
  run.lk = 4;
  run.jobs = 2;
  run.starts = 1;
  const obs::MetricsRegistry reg = obs::MetricsRegistry::capture(run);
  std::ostringstream os;
  reg.write_json(os);

  const obs::JsonValue doc = obs::JsonValue::parse(os.str());
  EXPECT_EQ(obs::validate_metrics_json(doc), "");
  EXPECT_EQ(doc.find("run")->find("tool")->as_string(), "obs_test");
  EXPECT_EQ(doc.find("counters")->find("flow.iterations")->as_number(), 17.0);

  const obs::JsonValue* ph = doc.find("phases");
  ASSERT_NE(ph, nullptr);
  ASSERT_EQ(ph->as_array().size(), 1u);
  EXPECT_EQ(ph->as_array()[0].find("name")->as_string(), "phase_a");
  EXPECT_EQ(ph->as_array()[0].find("count")->as_number(), 2.0);

  // v2 sections: capture() auto-fills the host identity, every completed
  // span feeds the histogram of its own name, and the scheduler/memory
  // sections are always present.
  EXPECT_FALSE(doc.find("run")->find("cpu")->as_string().empty());
  const obs::JsonValue* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->as_array().size(), 1u);
  EXPECT_EQ(hists->as_array()[0].find("name")->as_string(), "phase_a");
  EXPECT_EQ(hists->as_array()[0].find("count")->as_number(), 2.0);
  const obs::JsonValue* sched = doc.find("scheduler");
  ASSERT_NE(sched, nullptr);
  ASSERT_NE(sched->find("steal_failures"), nullptr);
  const obs::JsonValue* memory = doc.find("memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_GT(memory->find("peak_rss_bytes")->as_number(), 0.0);
}

TEST_F(ObsTest, ValidatorRejectsSchemaDrift) {
  obs::RunInfo run;
  run.tool = "obs_test";
  const obs::MetricsRegistry reg = obs::MetricsRegistry::capture(run);
  std::ostringstream os;
  reg.write_json(os);
  std::string text = os.str();

  const std::string wrong = text;
  text.replace(text.find("merced-metrics-v2"), 17, "merced-metrics-v9");
  EXPECT_EQ(obs::validate_metrics_json(obs::JsonValue::parse(text)),
            "unknown schema \"merced-metrics-v9\"");

  // Renaming a counter must also fail: every Counter is part of the schema.
  std::string renamed = wrong;
  const std::size_t at = renamed.find("\"flow.iterations\"");
  ASSERT_NE(at, std::string::npos);
  renamed.replace(at, 17, "\"flow.bogus\"");
  EXPECT_EQ(obs::validate_metrics_json(obs::JsonValue::parse(renamed)),
            "counters: unknown counter \"flow.bogus\"");

  // So must dropping one: v2 artifacts carry the full current counter set.
  std::string dropped = wrong;
  const std::string line = "\n    \"flow.iterations\": 0,";
  const std::size_t drop_at = dropped.find(line);
  ASSERT_NE(drop_at, std::string::npos);
  dropped.erase(drop_at, line.size());
  EXPECT_EQ(obs::validate_metrics_json(obs::JsonValue::parse(dropped)),
            "counters: missing \"flow.iterations\"");
}

TEST_F(ObsTest, ValidatorAcceptsV1CounterSubsetButNotUnknownNames) {
  // A v1 artifact written before newer counters existed stays valid
  // (subset semantics), but an unknown counter name is still schema drift.
  const std::string v1 = R"({"schema": "merced-metrics-v1",
    "run": {"tool": "t", "circuit": "c", "lk": 8, "jobs": 1, "starts": 1, "simd": 0},
    "counters": {"flow.iterations": 3},
    "phases": []})";
  EXPECT_EQ(obs::validate_metrics_json(obs::JsonValue::parse(v1)), "");

  std::string unknown = v1;
  const std::size_t at = unknown.find("flow.iterations");
  ASSERT_NE(at, std::string::npos);
  unknown.replace(at, std::string("flow.iterations").size(), "flow.bogus_name");
  EXPECT_EQ(obs::validate_metrics_json(obs::JsonValue::parse(unknown)),
            "counters: unknown counter \"flow.bogus_name\"");
}

// ---- histograms ---------------------------------------------------------

TEST(HistogramMathTest, BucketGridIsExactBelowSubRangeAndTilesWithoutGaps) {
  // Values below 2^kHistSubBits land in singleton buckets — exact.
  for (std::uint64_t v = 0; v < obs::kHistSub; ++v) {
    EXPECT_EQ(obs::hist_bucket_index(v), v);
    EXPECT_EQ(obs::hist_bucket_lower(v), v);
    EXPECT_EQ(obs::hist_bucket_upper(v), v);
  }
  // The grid tiles [0, 2^kHistMaxBits) with no gaps or overlaps: both
  // bounds map back to their own index, and each upper bound is one below
  // the next bucket's lower bound (index continuity at octave seams).
  for (std::size_t i = 0; i < obs::kHistBuckets; ++i) {
    EXPECT_EQ(obs::hist_bucket_index(obs::hist_bucket_lower(i)), i);
    EXPECT_EQ(obs::hist_bucket_index(obs::hist_bucket_upper(i)), i);
    if (i + 1 < obs::kHistBuckets) {
      EXPECT_EQ(obs::hist_bucket_upper(i) + 1, obs::hist_bucket_lower(i + 1));
    }
  }
  // Out-of-range values clamp into the top bucket instead of overflowing.
  EXPECT_EQ(obs::hist_bucket_index(std::uint64_t{1} << obs::kHistMaxBits),
            obs::kHistBuckets - 1);
  EXPECT_EQ(obs::hist_bucket_index(~std::uint64_t{0}), obs::kHistBuckets - 1);
  // Relative bucket width stays within the sub-bucket resolution bound.
  for (std::size_t i = obs::kHistSub; i < obs::kHistBuckets; ++i) {
    const double lower = static_cast<double>(obs::hist_bucket_lower(i));
    const double width = static_cast<double>(obs::hist_bucket_upper(i) -
                                             obs::hist_bucket_lower(i) + 1);
    EXPECT_LE(width / lower, 1.0 / static_cast<double>(obs::kHistSub) + 1e-12);
  }
}

TEST_F(ObsTest, HistogramEightThreadMergeIsExactAndDeterministic) {
  // The merged histogram is a pure function of the multiset of recorded
  // values, never of which thread recorded what: record a known multiset
  // from 8 threads, twice, and demand identical bucket-exact snapshots.
  const auto record = [] {
    obs::reset();
    obs::enable();
    {
      ThreadPool pool(8);
      pool.parallel_for(800, [](std::size_t i) {
        MERCED_HIST("merge_test", static_cast<std::uint64_t>(i) * 37 % 1000);
      });
    }
    obs::disable();
    return obs::histogram_snapshots();
  };
  const std::vector<obs::HistogramSnapshot> first = record();
  const std::vector<obs::HistogramSnapshot> second = record();

  ASSERT_EQ(first.size(), 1u);
  const obs::HistogramSnapshot& h = first[0];
  EXPECT_EQ(h.name, "merge_test");
  EXPECT_EQ(h.count, 800u);
  std::uint64_t sum = 0, mn = ~std::uint64_t{0}, mx = 0;
  std::vector<std::uint64_t> oracle(obs::kHistBuckets, 0);
  for (std::uint64_t i = 0; i < 800; ++i) {
    const std::uint64_t v = i * 37 % 1000;
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    ++oracle[obs::hist_bucket_index(v)];
  }
  EXPECT_EQ(h.sum, sum);
  EXPECT_EQ(h.min, mn);
  EXPECT_EQ(h.max, mx);
  EXPECT_EQ(h.buckets, oracle);

  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].count, h.count);
  EXPECT_EQ(second[0].sum, h.sum);
  EXPECT_EQ(second[0].min, h.min);
  EXPECT_EQ(second[0].max, h.max);
  EXPECT_EQ(second[0].buckets, h.buckets);
}

TEST_F(ObsTest, HistogramsMergeByNameStringNotPointer) {
  // Two distinct static strings with equal contents — the situation when
  // the same literal appears in different TUs, e.g. the scalar and SIMD
  // kernels both recording "kernel.range_events" — merge into one snapshot.
  static const char site_a[] = "shared.name";
  static const char site_b[] = "shared.name";
  ASSERT_NE(static_cast<const void*>(site_a), static_cast<const void*>(site_b));
  obs::enable();
  obs::hist_record(site_a, 5);
  obs::hist_record(site_b, 7);
  obs::disable();
  const std::vector<obs::HistogramSnapshot> snaps = obs::histogram_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "shared.name");
  EXPECT_EQ(snaps[0].count, 2u);
  EXPECT_EQ(snaps[0].sum, 12u);
  EXPECT_EQ(snaps[0].min, 5u);
  EXPECT_EQ(snaps[0].max, 7u);
}

TEST_F(ObsTest, HistogramEmptyFlushAndNullSink) {
  // Nothing recorded: the snapshot list is empty, not a zero-count entry.
  obs::enable();
  EXPECT_TRUE(obs::histogram_snapshots().empty());
  obs::disable();
  obs::reset();

  // Disabled recording is a no-op (the macro's single-branch contract).
  ASSERT_FALSE(obs::enabled());
  MERCED_HIST("ghost", 42);
  EXPECT_TRUE(obs::histogram_snapshots().empty());
}

TEST_F(ObsTest, SpanDurationsFeedTheHistogramOfTheSpanName) {
  obs::enable();
  { MERCED_SPAN("timed_phase"); }
  { MERCED_SPAN("timed_phase"); }
  { MERCED_SPAN("timed_phase"); }
  obs::disable();

  const std::vector<obs::HistogramSnapshot> snaps = obs::histogram_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "timed_phase");
  EXPECT_EQ(snaps[0].count, 3u);
  EXPECT_GE(snaps[0].max, snaps[0].min);
  // The histogram's sum is exactly the sum of the span durations.
  std::uint64_t span_sum = 0;
  for (const obs::SpanEvent& e : obs::span_events()) {
    span_sum += static_cast<std::uint64_t>(e.dur_ns);
  }
  EXPECT_EQ(snaps[0].sum, span_sum);
}

TEST_F(ObsTest, QuantilesMatchSortedVectorOracleWithinOneBucket) {
  // Deterministic pseudo-random values spanning several octaves.
  std::vector<std::uint64_t> values;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    values.push_back((state >> 33) % 2000000);
  }
  obs::enable();
  for (std::uint64_t v : values) MERCED_HIST("quantiles", v);
  obs::disable();
  const std::vector<obs::HistogramSnapshot> snaps = obs::histogram_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  const obs::HistogramSnapshot& h = snaps[0];

  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const auto rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(q * static_cast<double>(values.size()))));
    const std::uint64_t truth = values[rank - 1];
    const std::uint64_t reported = obs::hist_quantile(h, q);
    // The estimate never undershoots and lives in the same bucket as the
    // true quantile — within one sub-bucket (<= 6.25% relative error).
    EXPECT_GE(reported, truth) << "q=" << q;
    EXPECT_EQ(obs::hist_bucket_index(reported), obs::hist_bucket_index(truth))
        << "q=" << q;
  }
  EXPECT_EQ(obs::hist_quantile(h, 1.0), h.max);
  EXPECT_EQ(obs::hist_quantile(obs::HistogramSnapshot{}, 0.5), 0u);
}

// Rewrites the numeric token that follows `anchor` (searching from `from`).
std::string patch_number_after(std::string text, const std::string& anchor,
                               std::size_t from, const std::string& digits) {
  const std::size_t at = text.find(anchor, from);
  EXPECT_NE(at, std::string::npos) << anchor;
  const std::size_t begin = at + anchor.size();
  std::size_t end = begin;
  while (end < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[end])) != 0) {
    ++end;
  }
  text.replace(begin, end - begin, digits);
  return text;
}

TEST_F(ObsTest, ValidatorRejectsInconsistentHistogramSections) {
  obs::enable();
  { MERCED_SPAN("alpha"); }
  { MERCED_SPAN("beta"); }
  obs::disable();
  obs::RunInfo run;
  run.tool = "obs_test";
  std::ostringstream os;
  obs::MetricsRegistry::capture(run).write_json(os);
  const std::string text = os.str();
  ASSERT_EQ(obs::validate_metrics_json(obs::JsonValue::parse(text)), "");
  const std::size_t hists_at = text.find("\"histograms\"");
  ASSERT_NE(hists_at, std::string::npos);

  // p50 pushed above p99: quantile monotonicity violated.
  const std::string bad_q =
      patch_number_after(text, "\"p50\": ", hists_at, "99999999999");
  EXPECT_EQ(obs::validate_metrics_json(obs::JsonValue::parse(bad_q)),
            "histogram \"alpha\": quantiles not monotone");

  // Count no longer equal to the bucket sum: the exactness contract broke.
  const std::string bad_count =
      patch_number_after(text, "\"count\": ", hists_at, "999");
  EXPECT_EQ(obs::validate_metrics_json(obs::JsonValue::parse(bad_count)),
            "histogram \"alpha\": bucket counts do not sum to count");

  // Histograms must stay sorted by name (deterministic artifact order).
  std::string unsorted = text;
  const std::size_t name_at = unsorted.find("\"alpha\"", hists_at);
  ASSERT_NE(name_at, std::string::npos);
  unsorted.replace(name_at, 7, "\"gamma\"");
  EXPECT_EQ(obs::validate_metrics_json(obs::JsonValue::parse(unsorted)),
            "histograms: not sorted by name (\"beta\" after \"gamma\")");
}

TEST(JsonParserTest, ParsesScalarsArraysAndObjects) {
  const obs::JsonValue v = obs::JsonValue::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"s": "hi\n\u0041", "t": true, "n": null}})");
  ASSERT_TRUE(v.is_object());
  const obs::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(a->as_array()[1].as_number(), 2.5);
  EXPECT_EQ(a->as_array()[2].as_number(), -300.0);
  const obs::JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->find("s")->as_string(), "hi\nA");
  EXPECT_TRUE(b->find("t")->as_bool());
  EXPECT_TRUE(b->find("n")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1, 2,]",     // trailing comma
      "{\"a\" 1}",   // missing colon
      "\"\\x\"",     // bad escape
      "01",          // leading zero
      "1 2",         // trailing garbage
      "nul",         // truncated literal
      "\"\\ud800\"", // lone surrogate
  };
  for (const char* text : bad) {
    EXPECT_THROW(obs::JsonValue::parse(text), obs::JsonParseError) << text;
  }
}

TEST(JsonParserTest, EqualityIsStructural) {
  const obs::JsonValue a = obs::JsonValue::parse(R"({"x": [1, {"y": "z"}]})");
  const obs::JsonValue b = obs::JsonValue::parse(R"({ "x" : [ 1 , {"y":"z"} ] })");
  const obs::JsonValue c = obs::JsonValue::parse(R"({"x": [1, {"y": "w"}]})");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace merced
