#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace merced {
namespace {

// The collector is process-global; every test starts and ends quiescent,
// disabled, and empty so tests compose in any order.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disable();
    obs::reset();
  }
  void TearDown() override {
    obs::disable();
    obs::reset();
  }
};

std::string render_trace() {
  std::ostringstream os;
  obs::write_chrome_trace(os);
  return os.str();
}

TEST_F(ObsTest, SpanNestingRecordsDepthAndContainment) {
  obs::enable();
  {
    MERCED_SPAN("outer");
    { MERCED_SPAN("inner", 7); }
    { MERCED_SPAN("inner_plain"); }
  }
  obs::disable();

  const std::vector<obs::SpanEvent> evs = obs::span_events();
  ASSERT_EQ(evs.size(), 3u);
  // span_events() sorts by start time, so the enclosing span comes first.
  EXPECT_STREQ(evs[0].name, "outer");
  EXPECT_EQ(evs[0].depth, 0u);
  EXPECT_FALSE(evs[0].has_arg);
  EXPECT_STREQ(evs[1].name, "inner");
  EXPECT_EQ(evs[1].depth, 1u);
  ASSERT_TRUE(evs[1].has_arg);
  EXPECT_EQ(evs[1].arg, 7u);
  EXPECT_STREQ(evs[2].name, "inner_plain");
  EXPECT_EQ(evs[2].depth, 1u);
  EXPECT_FALSE(evs[2].has_arg);

  // All on the recording thread, and both children lie inside the parent.
  EXPECT_EQ(evs[1].tid, evs[0].tid);
  EXPECT_EQ(evs[2].tid, evs[0].tid);
  for (int i : {1, 2}) {
    EXPECT_GE(evs[i].start_ns, evs[0].start_ns);
    EXPECT_LE(evs[i].start_ns + evs[i].dur_ns, evs[0].start_ns + evs[0].dur_ns);
  }
}

TEST_F(ObsTest, SpansAttributeToTheRecordingThread) {
  obs::enable();
  std::thread worker([] { MERCED_SPAN("worker_span"); });
  worker.join();
  { MERCED_SPAN("main_span"); }
  obs::disable();

  const std::vector<obs::SpanEvent> evs = obs::span_events();
  ASSERT_EQ(evs.size(), 2u);
  const obs::SpanEvent* main_ev = nullptr;
  const obs::SpanEvent* worker_ev = nullptr;
  for (const obs::SpanEvent& e : evs) {
    if (std::string(e.name) == "main_span") main_ev = &e;
    if (std::string(e.name) == "worker_span") worker_ev = &e;
  }
  ASSERT_NE(main_ev, nullptr);
  ASSERT_NE(worker_ev, nullptr);
  EXPECT_NE(main_ev->tid, worker_ev->tid);
  // A fresh thread starts at depth 0 regardless of what main is doing.
  EXPECT_EQ(worker_ev->depth, 0u);
}

TEST_F(ObsTest, CountersAggregateExactlyAcrossEightThreads) {
  obs::enable();
  {
    ThreadPool pool(8);
    pool.parallel_for(1000, [](std::size_t i) {
      MERCED_COUNT(obs::Counter::kKernelEventsPopped, 1);
      MERCED_COUNT(obs::Counter::kKernelBatches, i % 3);
    });
  }
  obs::disable();

  EXPECT_EQ(obs::counter_value(obs::Counter::kKernelEventsPopped), 1000u);
  // sum of i % 3 over [0, 1000) = 333 full cycles of 0+1+2, plus 999 % 3 = 0.
  EXPECT_EQ(obs::counter_value(obs::Counter::kKernelBatches), 999u);
  // The pool's own instrumentation (satellite of the same layer) must agree.
  EXPECT_EQ(obs::counter_value(obs::Counter::kPoolParallelFors), 1u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kPoolTasksRun), 1000u);

  const std::vector<std::uint64_t> all = obs::counter_values();
  ASSERT_EQ(all.size(), obs::kNumCounters);
  EXPECT_EQ(all[static_cast<std::size_t>(obs::Counter::kKernelEventsPopped)], 1000u);
}

TEST_F(ObsTest, TraceJsonIsSchemaValidAndDeterministicModuloTimestamps) {
  const auto record = [] {
    obs::reset();
    obs::enable();
    {
      MERCED_SPAN("phase_a");
      { MERCED_SPAN("step", 1); }
      { MERCED_SPAN("step", 2); }
    }
    { MERCED_SPAN("phase_b"); }
    obs::disable();
    return render_trace();
  };
  const std::string doc_text1 = record();
  const std::string doc_text2 = record();

  const obs::JsonValue doc1 = obs::JsonValue::parse(doc_text1);
  const obs::JsonValue doc2 = obs::JsonValue::parse(doc_text2);
  EXPECT_EQ(obs::validate_trace_json(doc1), "");
  EXPECT_EQ(obs::validate_trace_json(doc2), "");

  // Two identical single-threaded recordings must agree on everything but
  // the clock: same events, same order, same tids/depths/args.
  const auto signature = [](const obs::JsonValue& doc) {
    std::ostringstream sig;
    for (const obs::JsonValue& ev : doc.find("traceEvents")->as_array()) {
      sig << ev.find("ph")->as_string() << "|" << ev.find("name")->as_string()
          << "|" << ev.find("tid")->as_number() << "|";
      if (const obs::JsonValue* args = ev.find("args")) {
        if (const obs::JsonValue* depth = args->find("depth")) {
          sig << depth->as_number();
        }
        sig << "|";
        if (const obs::JsonValue* idx = args->find("i")) sig << idx->as_number();
      }
      sig << "\n";
    }
    return sig.str();
  };
  EXPECT_EQ(signature(doc1), signature(doc2));
}

TEST_F(ObsTest, NullSinkRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  {
    MERCED_SPAN("ghost");
    MERCED_COUNT(obs::Counter::kKernelBatches, 5);
  }
  EXPECT_TRUE(obs::span_events().empty());
  for (std::uint64_t v : obs::counter_values()) EXPECT_EQ(v, 0u);

  // The trace document is still well-formed, just empty of "X" events.
  const obs::JsonValue doc = obs::JsonValue::parse(render_trace());
  EXPECT_EQ(obs::validate_trace_json(doc), "");
  for (const obs::JsonValue& ev : doc.find("traceEvents")->as_array()) {
    EXPECT_NE(ev.find("ph")->as_string(), "X");
  }
}

TEST_F(ObsTest, MetricsArtifactRoundTripsThroughValidator) {
  obs::enable();
  {
    MERCED_SPAN("phase_a");
    MERCED_COUNT(obs::Counter::kFlowIterations, 17);
  }
  { MERCED_SPAN("phase_a"); }
  obs::disable();

  obs::RunInfo run;
  run.tool = "obs_test";
  run.circuit = "none";
  run.lk = 4;
  run.jobs = 2;
  run.starts = 1;
  const obs::MetricsRegistry reg = obs::MetricsRegistry::capture(run);
  std::ostringstream os;
  reg.write_json(os);

  const obs::JsonValue doc = obs::JsonValue::parse(os.str());
  EXPECT_EQ(obs::validate_metrics_json(doc), "");
  EXPECT_EQ(doc.find("run")->find("tool")->as_string(), "obs_test");
  EXPECT_EQ(doc.find("counters")->find("flow.iterations")->as_number(), 17.0);

  const obs::JsonValue* ph = doc.find("phases");
  ASSERT_NE(ph, nullptr);
  ASSERT_EQ(ph->as_array().size(), 1u);
  EXPECT_EQ(ph->as_array()[0].find("name")->as_string(), "phase_a");
  EXPECT_EQ(ph->as_array()[0].find("count")->as_number(), 2.0);
}

TEST_F(ObsTest, ValidatorRejectsSchemaDrift) {
  obs::RunInfo run;
  run.tool = "obs_test";
  const obs::MetricsRegistry reg = obs::MetricsRegistry::capture(run);
  std::ostringstream os;
  reg.write_json(os);
  std::string text = os.str();

  const std::string wrong = text;
  text.replace(text.find("merced-metrics-v1"), 17, "merced-metrics-v9");
  EXPECT_NE(obs::validate_metrics_json(obs::JsonValue::parse(text)), "");

  // Dropping a counter must also fail: every Counter is part of the schema.
  std::string missing = wrong;
  const std::size_t at = missing.find("\"flow.iterations\"");
  ASSERT_NE(at, std::string::npos);
  missing.replace(at, 17, "\"flow.bogus\"");
  EXPECT_NE(obs::validate_metrics_json(obs::JsonValue::parse(missing)), "");
}

TEST(JsonParserTest, ParsesScalarsArraysAndObjects) {
  const obs::JsonValue v = obs::JsonValue::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"s": "hi\n\u0041", "t": true, "n": null}})");
  ASSERT_TRUE(v.is_object());
  const obs::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(a->as_array()[1].as_number(), 2.5);
  EXPECT_EQ(a->as_array()[2].as_number(), -300.0);
  const obs::JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->find("s")->as_string(), "hi\nA");
  EXPECT_TRUE(b->find("t")->as_bool());
  EXPECT_TRUE(b->find("n")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1, 2,]",     // trailing comma
      "{\"a\" 1}",   // missing colon
      "\"\\x\"",     // bad escape
      "01",          // leading zero
      "1 2",         // trailing garbage
      "nul",         // truncated literal
      "\"\\ud800\"", // lone surrogate
  };
  for (const char* text : bad) {
    EXPECT_THROW(obs::JsonValue::parse(text), obs::JsonParseError) << text;
  }
}

TEST(JsonParserTest, EqualityIsStructural) {
  const obs::JsonValue a = obs::JsonValue::parse(R"({"x": [1, {"y": "z"}]})");
  const obs::JsonValue b = obs::JsonValue::parse(R"({ "x" : [ 1 , {"y":"z"} ] })");
  const obs::JsonValue c = obs::JsonValue::parse(R"({"x": [1, {"y": "w"}]})");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace merced
