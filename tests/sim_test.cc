#include <gtest/gtest.h>

#include <random>

#include "circuits/registry.h"
#include "circuits/s27.h"
#include "flow/saturate_network.h"
#include "graph/circuit_graph.h"
#include "graph/scc.h"
#include "netlist/bench_io.h"
#include "partition/assign_cbit.h"
#include "partition/make_group.h"
#include "sim/cone.h"
#include "sim/fault.h"
#include "sim/fault_sim.h"
#include "sim/simulator.h"

namespace merced {
namespace {

// -------------------------------------------------------------- simulator ---

TEST(SimulatorTest, CombinationalFunction) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n");
  Simulator sim(nl);
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      sim.step(std::vector<bool>{a, b});
      EXPECT_EQ(sim.output_values()[0], a != b);
    }
  }
}

TEST(SimulatorTest, DffDelaysByOneCycle) {
  const Netlist nl = parse_bench("INPUT(a)\nOUTPUT(y)\nq = DFF(a)\ny = BUF(q)\n");
  Simulator sim(nl);
  sim.set_state(std::vector<bool>{false});
  const std::vector<bool> stream = {true, false, true, true, false};
  bool prev = false;
  for (bool in : stream) {
    sim.step(std::vector<bool>{in});
    EXPECT_EQ(sim.output_values()[0], prev);
    prev = in;
  }
}

TEST(SimulatorTest, S27KnownBehaviour) {
  // s27 reset to 000: outputs follow the published logic. Cross-check a few
  // cycles against hand-evaluated values.
  const Netlist nl = make_s27();
  Simulator sim(nl);
  sim.set_state(std::vector<bool>{false, false, false});
  // Inputs G0..G3 = 0,0,0,0: G14=1, G12=NOR(0,G7=0)=1, G13=NAND(0,1)=1,
  // G8=AND(1,G6=0)=0, G15=OR(1,0)=1, G16=OR(0,0)=0, G9=NAND(0,1)=1,
  // G10=NOR(1,G11)=0, G11=NOR(G5=0,1)=0, G17=NOT(0)=1.
  sim.step(std::vector<bool>{false, false, false, false});
  EXPECT_EQ(sim.output_values()[0], true);
  EXPECT_EQ(sim.value(nl.find("G11")), false);
  EXPECT_EQ(sim.value(nl.find("G13")), true);
  // Next state: G5<=G10=0, G6<=G11=0, G7<=G13=1.
  const auto st = sim.state();
  EXPECT_EQ(st, (std::vector<bool>{false, false, true}));
}

TEST(SimulatorTest, BitParallelMatchesScalar) {
  const Netlist nl = make_s27();
  std::mt19937_64 rng(3);
  Simulator scalar(nl);
  Simulator64 wide(nl);
  // Lane l of the wide sim mirrors an independent scalar run; use lane 0.
  scalar.set_state(std::vector<bool>{false, true, false});
  wide.set_state(std::vector<std::uint64_t>{0, ~std::uint64_t{0}, 0});
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::vector<bool> in(4);
    std::vector<std::uint64_t> win(4);
    for (int i = 0; i < 4; ++i) {
      in[static_cast<std::size_t>(i)] = rng() & 1;
      win[static_cast<std::size_t>(i)] =
          in[static_cast<std::size_t>(i)] ? ~std::uint64_t{0} : 0;
    }
    scalar.step(in);
    wide.step(win);
    for (GateId id = 0; id < nl.size(); ++id) {
      EXPECT_EQ(scalar.value(id) ? ~std::uint64_t{0} : 0, wide.value(id))
          << nl.gate(id).name << " cycle " << cycle;
    }
  }
}

TEST(SimulatorTest, InputSizeChecked) {
  const Netlist nl = make_s27();
  Simulator sim(nl);
  EXPECT_THROW(sim.step(std::vector<bool>{true}), std::invalid_argument);
  EXPECT_THROW(sim.set_state(std::vector<bool>{true}), std::invalid_argument);
}

// ------------------------------------------------------------ fault model ---

TEST(FaultTest, EnumerationCoversStemsAndBranchPins) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\nx = NOT(a)\ny = AND(x, a)\nz = OR(x, a)\n");
  const auto faults = enumerate_faults(nl);
  // Stems: a, x, y, z -> 8 faults. Branch pins: x fans out twice, a three
  // times -> gates y,z each have 2 pins on multi-fanout nets, x has 1.
  std::size_t stems = 0, pins = 0;
  for (const Fault& f : faults) {
    (f.site == Fault::Site::kOutput ? stems : pins) += 1;
  }
  EXPECT_EQ(stems, 8u);
  EXPECT_EQ(pins, 10u);  // (y:2 + z:2 + x:1) * 2 values
}

TEST(FaultTest, CollapsingRemovesControlledInputFaults) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, b)\n");
  auto faults = enumerate_faults(nl);
  const auto collapsed = collapse_faults(nl, faults);
  EXPECT_LT(collapsed.size(), faults.size());
  for (const Fault& f : collapsed) {
    if (f.site == Fault::Site::kInputPin) {
      const GateType t = nl.gate(f.gate).type;
      if (t == GateType::kAnd) { EXPECT_TRUE(f.stuck_value); }   // s-a-0 collapsed
      if (t == GateType::kOr) { EXPECT_FALSE(f.stuck_value); }   // s-a-1 collapsed
    }
  }
}

// -------------------------------------------------------------- fault sim ---

std::vector<std::vector<bool>> random_stream(std::size_t cycles, std::size_t width,
                                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<bool>> s(cycles, std::vector<bool>(width));
  for (auto& v : s) {
    for (std::size_t i = 0; i < width; ++i) v[i] = rng() & 1;
  }
  return s;
}

TEST(FaultSimTest, DetectsObviousOutputFault) {
  const Netlist nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n");
  const Fault f{nl.find("y"), Fault::Site::kOutput, 0, true};
  const auto stream = random_stream(8, 1, 1);
  const auto r = simulate_faults(nl, std::vector<Fault>{f}, stream, {});
  EXPECT_TRUE(r.detected[0]);
  EXPECT_LE(r.detect_cycle[0], 7u);
}

TEST(FaultSimTest, S27CoverageLowAtSinglePo) {
  // s27's only PO is one inverter off G11: many faults are sequentially
  // hard to observe there. (Cross-checked against an independent
  // netlist-rewriting reference; this poor observability is real and is
  // precisely why BIST observes register D-pins via PSA.)
  const Netlist nl = make_s27();
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  const auto stream = random_stream(500, 4, 99);
  const std::vector<bool> init(3, false);
  const auto r = simulate_faults(nl, faults, stream, init);
  EXPECT_GT(r.num_detected, 0u);
  EXPECT_LT(r.num_detected, faults.size());
  EXPECT_EQ(r.detected.size(), faults.size());
}

TEST(FaultSimTest, RegisterObservabilityImprovesCoverage) {
  // Observing the DFF D-pins (what a PSA-mode CBIT captures) detects more
  // faults than the single PO. Random sequential coverage on s27 is still
  // capped: its {G7,G12,G13} loop has an absorbing state (once G7 = 1 it
  // never resets under random inputs) — exactly the pathology that makes
  // pseudo-exhaustive *segment* testing attractive (see ConeTest's
  // exhaustive-coverage test for the PE guarantee).
  const auto stream = random_stream(500, 4, 99);
  const std::vector<bool> init(3, false);

  const Netlist plain = make_s27();
  const auto po_only =
      simulate_faults(plain, collapse_faults(plain, enumerate_faults(plain)),
                      stream, init);

  Netlist observed = make_s27();
  for (auto n : {"G10", "G11", "G13"}) observed.mark_output(observed.find(n));
  observed.finalize();
  const auto faults = collapse_faults(observed, enumerate_faults(observed));
  const auto with_regs = simulate_faults(observed, faults, stream, init);

  EXPECT_GT(with_regs.num_detected, po_only.num_detected);
  EXPECT_GT(with_regs.num_detected, faults.size() * 4 / 10);
}

TEST(FaultSimTest, SerialAndParallelAgree) {
  // Run each fault alone vs batched: identical detection verdicts. s510's
  // fault list spans two and more 63-lane groups.
  const Netlist nl = load_benchmark("s510");
  auto faults = enumerate_faults(nl);
  ASSERT_GT(faults.size(), 63u);
  faults.resize(70);
  const auto stream = random_stream(100, nl.inputs().size(), 7);
  const std::vector<bool> init(nl.dffs().size(), false);
  const auto batched = simulate_faults(nl, faults, stream, init);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto solo =
        simulate_faults(nl, std::vector<Fault>{faults[i]}, stream, init);
    EXPECT_EQ(solo.detected[0], batched.detected[i]) << faults[i];
    if (solo.detected[0]) {
      EXPECT_EQ(solo.detect_cycle[0], batched.detect_cycle[i]) << faults[i];
    }
  }
}

TEST(FaultSimTest, UndetectableFaultStaysUndetected) {
  // y = OR(a, CONST1-ish): make a redundant fault via a constant-like
  // structure: z = OR(x, NOT(x)) is always 1; faults on x's pins of z are
  // undetectable at z.
  const Netlist nl = parse_bench(
      "INPUT(a)\nOUTPUT(z)\nxn = NOT(a)\nz = OR(a, xn)\n");
  // z stuck-at-1 is undetectable (z is always 1).
  const Fault f{nl.find("z"), Fault::Site::kOutput, 0, true};
  const auto r = simulate_faults(nl, std::vector<Fault>{f},
                                 random_stream(64, 1, 3), {});
  EXPECT_FALSE(r.detected[0]);
}

// -------------------------------------------------- cone / PE coverage ---

struct S27Cut {
  Netlist netlist = make_s27();
  CircuitGraph graph{netlist};
  Clustering partitions;

  explicit S27Cut(std::size_t lk = 3) {
    const SccInfo sccs = find_sccs(graph);
    SaturateParams p;
    p.seed = 27;
    const auto sat = saturate_network(graph, p);
    MakeGroupParams mg;
    mg.lk = lk;
    const auto groups = make_group(graph, sccs, sat, mg);
    partitions = assign_cbit(graph, groups.clustering, lk).partitions;
  }
};

TEST(ConeTest, InputsMatchClusteringCount) {
  S27Cut s;
  for (std::size_t i = 0; i < s.partitions.count(); ++i) {
    ConeSimulator cone(s.graph, s.partitions, i);
    EXPECT_EQ(cone.cut_inputs().size(), input_count(s.graph, s.partitions, i));
  }
}

TEST(ConeTest, EvalMatchesFullSimulator) {
  // Feed the cone the values a full-circuit simulation would produce at its
  // input nets; its outputs must match the full simulation.
  S27Cut s;
  Simulator sim(s.netlist);
  sim.set_state(std::vector<bool>{true, false, true});
  std::mt19937_64 rng(31);
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::vector<bool> in(4);
    for (auto&& i : {0, 1, 2, 3}) in[static_cast<std::size_t>(i)] = rng() & 1;
    sim.step(in);
    for (std::size_t ci = 0; ci < s.partitions.count(); ++ci) {
      ConeSimulator cone(s.graph, s.partitions, ci);
      std::vector<std::uint64_t> cone_in;
      for (NetId n : cone.cut_inputs()) {
        cone_in.push_back(sim.value(s.graph.driver(n)) ? ~std::uint64_t{0} : 0);
      }
      const auto out = cone.eval(cone_in);
      for (std::size_t o = 0; o < out.size(); ++o) {
        const bool expect = sim.value(s.graph.driver(cone.observed_outputs()[o]));
        EXPECT_EQ(out[o], expect ? ~std::uint64_t{0} : 0)
            << "cluster " << ci << " output " << o << " cycle " << cycle;
      }
    }
  }
}

TEST(ConeTest, PseudoExhaustiveCoverageIsComplete) {
  // The PET guarantee: every non-redundant stuck fault inside a CUT is
  // detected by the 2^iota exhaustive sweep. Verify undetected faults are
  // genuinely combinationally redundant by checking the full truth table.
  S27Cut s;
  for (std::size_t ci = 0; ci < s.partitions.count(); ++ci) {
    ConeSimulator cone(s.graph, s.partitions, ci);
    if (cone.gates().empty()) continue;
    const CoverageResult cov = exhaustive_coverage(cone);
    for (const Fault& f : cov.undetected) {
      // Re-check: truly no pattern distinguishes good/faulty.
      const std::size_t n = cone.cut_inputs().size();
      const std::uint64_t patterns = n >= 6 ? (std::uint64_t{1} << n) : 64;
      bool distinguishable = false;
      std::vector<std::uint64_t> in(n);
      for (std::uint64_t base = 0; base < patterns; base += 64) {
        for (std::size_t i = 0; i < n; ++i) {
          std::uint64_t w = 0;
          for (std::uint64_t l = 0; l < 64; ++l) {
            if (((base + l) >> i) & 1) w |= std::uint64_t{1} << l;
          }
          in[i] = w;
        }
        if (cone.eval(in) != cone.eval(in, &f)) distinguishable = true;
      }
      EXPECT_FALSE(distinguishable) << "fault " << f << " was missed but detectable";
    }
    EXPECT_GT(cov.coverage(), 0.85) << "cluster " << ci;
  }
}

TEST(ConeTest, DetectsInjectedFault) {
  S27Cut s;
  // Find a cluster with gates and check a specific stem fault flips outputs
  // for some pattern.
  for (std::size_t ci = 0; ci < s.partitions.count(); ++ci) {
    ConeSimulator cone(s.graph, s.partitions, ci);
    if (cone.gates().empty() || cone.cut_inputs().empty()) continue;
    const Fault f{cone.gates()[0], Fault::Site::kOutput, 0, true};
    const std::size_t n = cone.cut_inputs().size();
    std::vector<std::uint64_t> in(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t w = 0;
      for (std::uint64_t l = 0; l < 64; ++l) {
        if ((l >> i) & 1) w |= std::uint64_t{1} << l;
      }
      in[i] = w;
    }
    const auto good = cone.eval(in);
    const auto bad = cone.eval(in, &f);
    // The stem itself may be unobserved, but usually differs somewhere.
    if (good != bad) SUCCEED();
  }
}

TEST(ConeTest, OversizedCutRejected) {
  const Netlist nl = load_benchmark("s510");
  const CircuitGraph g(nl);
  Clustering whole;
  whole.cluster_of.assign(g.num_nodes(), kNoCluster);
  whole.clusters.emplace_back();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.is_pi(v)) {
      whole.cluster_of[v] = 0;
      whole.clusters[0].push_back(v);
    }
  }
  ConeSimulator cone(g, whole, 0);
  EXPECT_THROW(exhaustive_coverage(cone, 20), std::invalid_argument);
}

}  // namespace
}  // namespace merced
