#include <gtest/gtest.h>

#include <random>

#include "circuits/registry.h"
#include "circuits/s27.h"
#include "core/emit_bist.h"
#include "core/merced.h"
#include "graph/circuit_graph.h"
#include "netlist/area_model.h"
#include "netlist/bench_io.h"
#include "sim/simulator.h"

namespace merced {
namespace {

struct Emitted {
  Netlist original;
  CircuitGraph graph;
  MercedResult compiled;
  BistNetlist bist;

  explicit Emitted(Netlist nl, std::size_t lk)
      : original(std::move(nl)), graph(original), compiled([&] {
          MercedConfig config;
          config.lk = lk;
          config.flow.seed = 27;
          return compile(original, config);
        }()),
        bist(emit_bist_netlist(graph, compiled.partitions, compiled.cut_net_ids)) {}
};

TEST(EmitBistTest, StructureHasOneACellPerCut) {
  Emitted e(make_s27(), 3);
  EXPECT_EQ(e.bist.acell_registers.size(), e.compiled.cut_net_ids.size());
  EXPECT_NE(e.bist.netlist.find(e.bist.test_mode_input), kNoGate);
  EXPECT_NE(e.bist.netlist.find(e.bist.test_enable_input), kNoGate);
  // Original gates all survive with their names.
  for (GateId id = 0; id < e.original.size(); ++id) {
    EXPECT_NE(e.bist.netlist.find(e.original.gate(id).name), kNoGate);
  }
}

TEST(EmitBistTest, AreaMatchesWithoutRetimingModel) {
  // Emitted area = original + 22 units per cut net (AND+XOR+NOR+DFF+MUX;
  // the paper's 2.3-DFF figure includes one routing unit on top).
  Emitted e(make_s27(), 3);
  const AreaUnits original = circuit_area(e.original);
  const AreaUnits emitted = circuit_area(e.bist.netlist);
  EXPECT_EQ(emitted, original + static_cast<AreaUnits>(22 * e.compiled.cuts.nets_cut));
}

TEST(EmitBistTest, NormalModeIsCycleExactEquivalent) {
  for (const char* name : {"s27", "s510"}) {
    Emitted e(load_benchmark(name), name == std::string("s27") ? 3u : 16u);
    ASSERT_GT(e.compiled.cuts.nets_cut, 0u) << name;

    Simulator orig(e.original);
    Simulator bist(e.bist.netlist);
    orig.set_state(std::vector<bool>(e.original.dffs().size(), false));
    bist.set_state(std::vector<bool>(e.bist.netlist.dffs().size(), false));

    // Input order: the emitted netlist appends test_mode and test_en after
    // the original PIs; hold both at 0 for normal operation.
    std::mt19937_64 rng(11);
    const std::size_t n_orig = e.original.inputs().size();
    ASSERT_EQ(e.bist.netlist.inputs().size(), n_orig + 2);
    for (int cycle = 0; cycle < 100; ++cycle) {
      std::vector<bool> in(n_orig);
      for (std::size_t i = 0; i < n_orig; ++i) in[i] = rng() & 1;
      std::vector<bool> bist_in = in;
      bist_in.push_back(false);  // test_mode = 0
      bist_in.push_back(false);  // test_en = 0
      orig.step(in);
      bist.step(bist_in);
      ASSERT_EQ(orig.output_values(), bist.output_values())
          << name << " cycle " << cycle;
    }
  }
}

TEST(EmitBistTest, TestModeChangesDataPaths) {
  // With test_mode = 1 the MUXes select the A_CELL registers: the circuit
  // must behave differently from normal mode for some input sequence.
  Emitted e(make_s27(), 3);
  ASSERT_GT(e.compiled.cuts.nets_cut, 0u);
  Simulator normal(e.bist.netlist), test(e.bist.netlist);
  normal.set_state(std::vector<bool>(e.bist.netlist.dffs().size(), false));
  test.set_state(std::vector<bool>(e.bist.netlist.dffs().size(), false));
  std::mt19937_64 rng(5);
  bool diverged = false;
  for (int cycle = 0; cycle < 50 && !diverged; ++cycle) {
    std::vector<bool> in(e.original.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
    std::vector<bool> normal_in = in, test_in = in;
    normal_in.push_back(false);
    normal_in.push_back(false);
    test_in.push_back(true);   // test_mode = 1
    test_in.push_back(true);   // test_en = 1
    normal.step(normal_in);
    test.step(test_in);
    diverged = normal.output_values() != test.output_values();
  }
  EXPECT_TRUE(diverged);
}

TEST(EmitBistTest, EmittedNetlistRoundTripsThroughBenchFormat) {
  Emitted e(make_s27(), 3);
  const std::string text = write_bench(e.bist.netlist);
  const Netlist again = parse_bench(text, "round");
  EXPECT_EQ(again.size(), e.bist.netlist.size());
  EXPECT_EQ(again.dffs().size(), e.bist.netlist.dffs().size());
}

}  // namespace
}  // namespace merced
