#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "circuits/s27.h"
#include "netlist/area_model.h"
#include "netlist/bench_io.h"
#include "netlist/gate.h"
#include "netlist/netlist.h"
#include "netlist/stats.h"

namespace merced {
namespace {

// ---------------------------------------------------------------- gates ---

TEST(GateTest, TypeNamesRoundTrip) {
  for (std::uint8_t i = 0; i < kGateTypeCount; ++i) {
    const auto type = static_cast<GateType>(i);
    GateType parsed;
    ASSERT_TRUE(gate_type_from_string(to_string(type), parsed)) << to_string(type);
    EXPECT_EQ(parsed, type);
  }
}

TEST(GateTest, ParseIsCaseInsensitiveAndKnowsAliases) {
  GateType t;
  EXPECT_TRUE(gate_type_from_string("nand", t));
  EXPECT_EQ(t, GateType::kNand);
  EXPECT_TRUE(gate_type_from_string("Inv", t));
  EXPECT_EQ(t, GateType::kNot);
  EXPECT_TRUE(gate_type_from_string("BUFF", t));
  EXPECT_EQ(t, GateType::kBuf);
  EXPECT_FALSE(gate_type_from_string("FOO", t));
}

TEST(GateTest, EvalBasicFunctions) {
  EXPECT_TRUE(eval_gate(GateType::kAnd, {true, true}));
  EXPECT_FALSE(eval_gate(GateType::kAnd, {true, false}));
  EXPECT_FALSE(eval_gate(GateType::kNand, {true, true}));
  EXPECT_TRUE(eval_gate(GateType::kOr, {false, true}));
  EXPECT_TRUE(eval_gate(GateType::kNor, {false, false}));
  EXPECT_TRUE(eval_gate(GateType::kXor, {true, false}));
  EXPECT_FALSE(eval_gate(GateType::kXor, {true, true}));
  EXPECT_TRUE(eval_gate(GateType::kXnor, {true, true}));
  EXPECT_FALSE(eval_gate(GateType::kNot, {true}));
  EXPECT_TRUE(eval_gate(GateType::kBuf, {true}));
}

TEST(GateTest, EvalMux) {
  // fanins: select, a (sel=0), b (sel=1)
  EXPECT_TRUE(eval_gate(GateType::kMux, {false, true, false}));
  EXPECT_FALSE(eval_gate(GateType::kMux, {true, true, false}));
  EXPECT_TRUE(eval_gate(GateType::kMux, {true, false, true}));
}

TEST(GateTest, EvalWideGates) {
  EXPECT_TRUE(eval_gate(GateType::kAnd, {true, true, true, true}));
  EXPECT_FALSE(eval_gate(GateType::kAnd, {true, true, false, true}));
  EXPECT_TRUE(eval_gate(GateType::kXor, {true, true, true}));  // odd parity
}

TEST(GateTest, BitParallelMatchesScalar) {
  for (GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr, GateType::kNor,
                     GateType::kXor, GateType::kXnor}) {
    for (unsigned a = 0; a < 2; ++a) {
      for (unsigned b = 0; b < 2; ++b) {
        const bool scalar = eval_gate(t, {a != 0, b != 0});
        const std::uint64_t wa = a ? ~std::uint64_t{0} : 0;
        const std::uint64_t wb = b ? ~std::uint64_t{0} : 0;
        const std::uint64_t words[] = {wa, wb};
        const std::uint64_t wide = eval_gate_u64(t, words);
        EXPECT_EQ(wide, scalar ? ~std::uint64_t{0} : 0)
            << to_string(t) << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(GateTest, EvalRejectsSequential) {
  EXPECT_THROW(eval_gate(GateType::kDff, {true}), std::logic_error);
  EXPECT_THROW(eval_gate(GateType::kInput, {}), std::logic_error);
}

// -------------------------------------------------------------- netlist ---

Netlist tiny() {
  Netlist nl("tiny");
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId b = nl.add_gate(GateType::kInput, "b");
  const GateId g = nl.add_gate(GateType::kAnd, "g", {a, b});
  const GateId q = nl.add_gate(GateType::kDff, "q", {g});
  const GateId o = nl.add_gate(GateType::kNot, "o", {q});
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

TEST(NetlistTest, BasicConstruction) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.size(), 5u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.find("g"), 2u);
  EXPECT_EQ(nl.find("nope"), kNoGate);
}

TEST(NetlistTest, DuplicateNameRejected) {
  Netlist nl;
  nl.add_gate(GateType::kInput, "a");
  EXPECT_THROW(nl.add_gate(GateType::kInput, "a"), std::invalid_argument);
}

TEST(NetlistTest, FanoutsBuiltByFinalize) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.fanouts(nl.find("a")).size(), 1u);
  EXPECT_EQ(nl.fanouts(nl.find("g")).size(), 1u);
  EXPECT_EQ(nl.fanouts(nl.find("o")).size(), 0u);
}

TEST(NetlistTest, TopoOrderRespectsDependencies) {
  const Netlist nl = tiny();
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), nl.size());
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  // AND gate must come after both inputs; NOT after is trivially satisfied
  // because the DFF is a source.
  EXPECT_GT(pos[nl.find("g")], pos[nl.find("a")]);
  EXPECT_GT(pos[nl.find("g")], pos[nl.find("b")]);
}

TEST(NetlistTest, ArityViolationDetected) {
  Netlist nl;
  const GateId a = nl.add_gate(GateType::kInput, "a");
  nl.add_gate(GateType::kAnd, "g", {a});  // AND with one input
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(NetlistTest, CombinationalCycleDetected) {
  Netlist nl;
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId g1 = nl.add_gate(GateType::kAnd, "g1");
  const GateId g2 = nl.add_gate(GateType::kOr, "g2", {g1, a});
  nl.set_fanins(g1, {g2, a});
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(NetlistTest, SequentialLoopIsFine) {
  Netlist nl;
  const GateId a = nl.add_gate(GateType::kInput, "a");
  const GateId g = nl.add_gate(GateType::kAnd, "g");
  const GateId q = nl.add_gate(GateType::kDff, "q", {g});
  nl.set_fanins(g, {a, q});
  EXPECT_NO_THROW(nl.finalize());
}

TEST(NetlistTest, MutationInvalidatesFinalize) {
  Netlist nl = tiny();
  EXPECT_TRUE(nl.finalized());
  nl.add_gate(GateType::kInput, "c");
  EXPECT_FALSE(nl.finalized());
  EXPECT_THROW((void)nl.topo_order(), std::logic_error);
}

// -------------------------------------------------------------- bench IO ---

TEST(BenchIoTest, ParseS27Counts) {
  const Netlist nl = make_s27();
  EXPECT_EQ(nl.name(), "s27");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.size(), 17u);  // 4 PI + 3 DFF + 10 gates
}

TEST(BenchIoTest, RoundTrip) {
  const Netlist nl = make_s27();
  const std::string text = write_bench(nl);
  const Netlist again = parse_bench(text, "s27");
  EXPECT_EQ(again.size(), nl.size());
  EXPECT_EQ(again.inputs().size(), nl.inputs().size());
  EXPECT_EQ(again.dffs().size(), nl.dffs().size());
  EXPECT_EQ(again.outputs().size(), nl.outputs().size());
  for (GateId id = 0; id < nl.size(); ++id) {
    const GateId other = again.find(nl.gate(id).name);
    ASSERT_NE(other, kNoGate) << nl.gate(id).name;
    EXPECT_EQ(again.gate(other).type, nl.gate(id).type);
    EXPECT_EQ(again.gate(other).fanins.size(), nl.gate(id).fanins.size());
  }
}

TEST(BenchIoTest, ForwardReferencesResolve) {
  const Netlist nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = BUF(a)\n");
  EXPECT_EQ(nl.size(), 3u);
  EXPECT_EQ(nl.gate(nl.find("y")).fanins[0], nl.find("x"));
}

TEST(BenchIoTest, CommentsAndBlanksIgnored) {
  const Netlist nl =
      parse_bench("# header\n\nINPUT(a)  # trailing\nOUTPUT(y)\ny = NOT(a)\n");
  EXPECT_EQ(nl.size(), 2u);
}

TEST(BenchIoTest, MalformedInputsThrow) {
  EXPECT_THROW(parse_bench("y = NOT(a)\n"), std::runtime_error);        // undefined a
  EXPECT_THROW(parse_bench("INPUT a\n"), std::runtime_error);           // no parens
  EXPECT_THROW(parse_bench("INPUT(a)\ny = FROB(a)\n"), std::runtime_error);
  EXPECT_THROW(parse_bench("OUTPUT(zz)\n"), std::runtime_error);        // undefined out
}

// ------------------------------------------------------------ area model ---

TEST(AreaModelTest, PaperUnitCosts) {
  EXPECT_EQ(gate_area(GateType::kNot, 1), 1);
  EXPECT_EQ(gate_area(GateType::kAnd, 2), 3);
  EXPECT_EQ(gate_area(GateType::kNand, 2), 2);
  EXPECT_EQ(gate_area(GateType::kOr, 2), 3);
  EXPECT_EQ(gate_area(GateType::kNor, 2), 2);
  EXPECT_EQ(gate_area(GateType::kXor, 2), 4);
  EXPECT_EQ(gate_area(GateType::kMux, 3), 3);
  EXPECT_EQ(gate_area(GateType::kDff, 1), 10);
  EXPECT_EQ(gate_area(GateType::kInput, 0), 0);
}

TEST(AreaModelTest, ExtraFaninsScaleUp) {
  EXPECT_EQ(gate_area(GateType::kNand, 3), 3);
  EXPECT_EQ(gate_area(GateType::kNand, 5), 5);
  EXPECT_EQ(gate_area(GateType::kAnd, 4), 5);
}

TEST(AreaModelTest, ACellIdentities) {
  // A_CELL = AND2 + NOR2 + XOR2 + DFF (Fig. 3a).
  EXPECT_EQ(kACellArea, gate_area(GateType::kAnd, 2) + gate_area(GateType::kNor, 2) +
                            gate_area(GateType::kXor, 2) + kDffArea);
  EXPECT_EQ(kACellFromDffArea, kACellArea - kDffArea);
  EXPECT_EQ(kACellWithMuxArea, 23);
  EXPECT_DOUBLE_EQ(static_cast<double>(kACellArea) / kDffArea, 1.9);
}

TEST(AreaModelTest, S27Stats) {
  const CircuitStats s = compute_stats(make_s27());
  EXPECT_EQ(s.num_inputs, 4u);
  EXPECT_EQ(s.num_dffs, 3u);
  EXPECT_EQ(s.num_invs, 2u);
  EXPECT_EQ(s.num_gates, 8u);
  // 3 DFF (30) + 2 NOT (2) + 1 AND (3) + 2 OR (6) + 2 NAND (4) + 3 NOR (6)
  EXPECT_EQ(s.estimated_area, 30 + 2 + 3 + 6 + 4 + 6);
}

TEST(AreaModelTest, StreamOperator) {
  std::ostringstream ss;
  ss << compute_stats(make_s27());
  EXPECT_NE(ss.str().find("s27"), std::string::npos);
  EXPECT_NE(ss.str().find("DFF=3"), std::string::npos);
}

}  // namespace
}  // namespace merced
