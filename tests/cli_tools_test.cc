// Error-path coverage for the artifact validators and the CLI tools'
// exit-code contract.
//
// The validators (validate_verify_json, validate_fuzz_json) promise exact,
// stable messages for each rejection class — truncated JSON, wrong schema
// string, summary/findings drift — because CI greps for them and DESIGN.md
// documents them. The binaries promise exit 0 = valid, 1 = invalid input /
// failures found, 2 = usage error. Both contracts are pinned here: the
// in-process half asserts message text and rule IDs verbatim, the
// subprocess half (paths injected by CMake as *_BIN) asserts exit codes of
// the real executables.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "fuzz/fuzz_json.h"
#include "fuzz/fuzzer.h"
#include "netlist/bench_io.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sat/prove_json.h"
#include "verify/diagnostic.h"
#include "verify/rule_ids.h"
#include "verify/verify_json.h"

namespace merced {
namespace {

obs::JsonValue parse(const std::string& text) { return obs::JsonValue::parse(text); }

std::string valid_verify_doc() {
  return R"({"schema": "merced-verify-v1",
    "run": {"tool": "t", "circuit": "c", "lk": 8},
    "summary": {"errors": 1, "warnings": 0, "infos": 0, "findings": 1, "clean": false},
    "findings": [{"rule": "PART-IOTA", "severity": "error", "message": "m",
                  "object": "G1", "line": 0}]})";
}

// ---- verify_json error paths -------------------------------------------

TEST(VerifyJsonErrorPathTest, ValidDocumentPasses) {
  EXPECT_EQ(verify::validate_verify_json(parse(valid_verify_doc())), "");
}

TEST(VerifyJsonErrorPathTest, TruncatedJsonThrowsParseError) {
  const std::string doc = valid_verify_doc();
  EXPECT_THROW(parse(doc.substr(0, doc.size() / 2)), obs::JsonParseError);
  EXPECT_THROW(parse("{\"schema\": \"merced-verify-v1\""), obs::JsonParseError);
}

TEST(VerifyJsonErrorPathTest, WrongSchemaStringIsNamedExactly) {
  std::string doc = valid_verify_doc();
  const std::size_t at = doc.find("merced-verify-v1");
  doc.replace(at, std::string("merced-verify-v1").size(), "merced-verify-v0");
  EXPECT_EQ(verify::validate_verify_json(parse(doc)),
            "unknown schema \"merced-verify-v0\"");
}

TEST(VerifyJsonErrorPathTest, SummaryCountDriftIsRejected) {
  std::string doc = valid_verify_doc();
  const std::size_t at = doc.find("\"findings\": 1");
  doc.replace(at, std::string("\"findings\": 1").size(), "\"findings\": 2");
  EXPECT_EQ(verify::validate_verify_json(parse(doc)),
            "summary: counts disagree with the findings array");
}

TEST(VerifyJsonErrorPathTest, CleanFlagDriftIsRejected) {
  std::string doc = valid_verify_doc();
  const std::size_t at = doc.find("\"clean\": false");
  doc.replace(at, std::string("\"clean\": false").size(), "\"clean\": true");
  EXPECT_EQ(verify::validate_verify_json(parse(doc)),
            "summary: \"clean\" disagrees with the error count");
}

TEST(VerifyJsonErrorPathTest, MissingMemberIsNamedExactly) {
  EXPECT_EQ(verify::validate_verify_json(parse(R"({"run": {}})")),
            "root: missing member \"schema\"");
  EXPECT_EQ(verify::validate_verify_json(parse(R"({"schema": 7})")),
            "root: member \"schema\" has wrong type");
}

// ---- parser rule IDs ----------------------------------------------------

TEST(ParserRuleIdTest, UndrivenNetCarriesExactRuleId) {
  try {
    parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n");
    FAIL() << "expected DiagnosticError";
  } catch (const verify::DiagnosticError& e) {
    EXPECT_EQ(e.diagnostic().rule, std::string(verify::kNetUndriven));
    EXPECT_EQ(e.diagnostic().object, "ghost");
  }
}

TEST(ParserRuleIdTest, MultiDrivenNetCarriesExactRuleId) {
  try {
    parse_bench("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n");
    FAIL() << "expected DiagnosticError";
  } catch (const verify::DiagnosticError& e) {
    EXPECT_EQ(e.diagnostic().rule, std::string(verify::kNetMultiDriven));
    EXPECT_EQ(e.diagnostic().object, "y");
  }
}

// ---- fuzz_json error paths ---------------------------------------------

std::string valid_fuzz_doc() {
  std::ostringstream os;
  fuzz::FuzzReport report;
  report.config.seed = 3;
  report.config.runs = 5;
  report.runs_executed = 5;
  fuzz::write_fuzz_json(os, report);
  return os.str();
}

TEST(FuzzJsonErrorPathTest, FreshReportValidates) {
  EXPECT_EQ(fuzz::validate_fuzz_json(parse(valid_fuzz_doc())), "");
}

TEST(FuzzJsonErrorPathTest, WrongSchemaStringIsNamedExactly) {
  std::string doc = valid_fuzz_doc();
  const std::size_t at = doc.find("merced-fuzz-v1");
  doc.replace(at, std::string("merced-fuzz-v1").size(), "merced-fuzz-v9");
  EXPECT_EQ(fuzz::validate_fuzz_json(parse(doc)), "unknown schema \"merced-fuzz-v9\"");
}

TEST(FuzzJsonErrorPathTest, SummaryDriftIsRejected) {
  std::string doc = valid_fuzz_doc();
  const std::size_t at = doc.find("\"failures\": 0");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, std::string("\"failures\": 0").size(), "\"failures\": 3");
  EXPECT_EQ(fuzz::validate_fuzz_json(parse(doc)),
            "summary: counts disagree with the failures array");
}

TEST(FuzzJsonErrorPathTest, CleanFlagDriftIsRejected) {
  std::string doc = valid_fuzz_doc();
  const std::size_t at = doc.find("\"clean\": true");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, std::string("\"clean\": true").size(), "\"clean\": false");
  EXPECT_EQ(fuzz::validate_fuzz_json(parse(doc)),
            "summary: \"clean\" disagrees with the failure count");
}

TEST(FuzzJsonErrorPathTest, OverexecutedRunsAreRejected) {
  std::string doc = valid_fuzz_doc();
  const std::size_t at = doc.find("\"runs_executed\": 5");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, std::string("\"runs_executed\": 5").size(), "\"runs_executed\": 6");
  EXPECT_EQ(fuzz::validate_fuzz_json(parse(doc)),
            "summary: more runs executed than requested");
}

// ---- prove_json error paths --------------------------------------------

std::string valid_prove_doc() {
  // One CUT whose verdicts partition the solve count: 3 detected faults all
  // SAT-confirmed and replayed, 1 undetected fault with an UNSAT certificate.
  sat::CutProof p;
  p.cluster_index = 0;
  p.num_inputs = 2;
  p.total_faults = 4;
  p.detected = 3;
  p.proved_redundant = 1;
  p.proved_detectable = 3;
  p.replayed = 3;
  p.solves = 4;
  sat::ProveRunInfo run;
  run.tool = "t";
  run.circuit = "c";
  run.lk = 8;
  std::ostringstream os;
  sat::write_prove_json(os, {&p, 1}, run);
  return os.str();
}

TEST(ProveJsonErrorPathTest, FreshReportValidates) {
  EXPECT_EQ(sat::validate_prove_json(parse(valid_prove_doc())), "");
}

TEST(ProveJsonErrorPathTest, TruncatedJsonThrowsParseError) {
  const std::string doc = valid_prove_doc();
  EXPECT_THROW(parse(doc.substr(0, doc.size() / 2)), obs::JsonParseError);
}

TEST(ProveJsonErrorPathTest, WrongSchemaStringIsNamedExactly) {
  std::string doc = valid_prove_doc();
  const std::size_t at = doc.find("merced-prove-v1");
  doc.replace(at, std::string("merced-prove-v1").size(), "merced-prove-v2");
  EXPECT_EQ(sat::validate_prove_json(parse(doc)), "unknown schema \"merced-prove-v2\"");
}

TEST(ProveJsonErrorPathTest, MissingMemberIsNamedExactly) {
  EXPECT_EQ(sat::validate_prove_json(parse(R"({"run": {}})")),
            "root: missing member \"schema\"");
  EXPECT_EQ(sat::validate_prove_json(parse(R"({"schema": 7})")),
            "root: member \"schema\" has wrong type");
  EXPECT_EQ(sat::validate_prove_json(
                parse(R"({"schema": "merced-prove-v1", "run": {"tool": "t"}})")),
            "run: missing member \"circuit\"");
}

TEST(ProveJsonErrorPathTest, SummaryDriftIsRejected) {
  std::string doc = valid_prove_doc();
  const std::size_t at = doc.find("\"proved_redundant\": 1,");
  ASSERT_NE(at, std::string::npos);  // summary comes before the cuts array
  doc.replace(at, std::string("\"proved_redundant\": 1,").size(),
              "\"proved_redundant\": 5,");
  EXPECT_EQ(sat::validate_prove_json(parse(doc)),
            "summary: \"proved_redundant\" disagrees with the cuts array");
}

TEST(ProveJsonErrorPathTest, BrokenVerdictPartitionIsRejected) {
  // Corrupt the per-cut entry (second occurrence of "solves") so redundant +
  // detectable + unknown no longer partition the solve count.
  std::string doc = valid_prove_doc();
  const std::size_t first = doc.find("\"solves\": 4");
  ASSERT_NE(first, std::string::npos);
  const std::size_t at = doc.find("\"solves\": 4", first + 1);
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, std::string("\"solves\": 4").size(), "\"solves\": 9");
  EXPECT_EQ(sat::validate_prove_json(parse(doc)),
            "cut: verdict counts do not partition \"solves\"");
}

TEST(ProveJsonErrorPathTest, OverclaimedReplayIsRejected) {
  std::string doc = valid_prove_doc();
  // The per-cut entry claims more replayed vectors than SAT verdicts.
  const std::size_t first = doc.find("\"replayed\": 3");
  ASSERT_NE(first, std::string::npos);
  const std::size_t at = doc.find("\"replayed\": 3", first + 1);
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, std::string("\"replayed\": 3").size(), "\"replayed\": 7");
  EXPECT_EQ(sat::validate_prove_json(parse(doc)),
            "cut: \"replayed\" exceeds \"proved_detectable\"");
}

TEST(ProveJsonErrorPathTest, FullyExplainedDriftIsRejected) {
  std::string doc = valid_prove_doc();
  const std::size_t at = doc.find("\"fully_explained\": true");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, std::string("\"fully_explained\": true").size(),
              "\"fully_explained\": false");
  EXPECT_EQ(sat::validate_prove_json(parse(doc)),
            "summary: \"fully_explained\" disagrees with the verdict counts");
}

// ---- binary exit codes --------------------------------------------------

#if defined(METRICS_CHECK_BIN) && defined(MERCED_FUZZ_BIN)

int run(const std::string& cmd) {
  const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  return WEXITSTATUS(status);
}

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = std::string(::testing::TempDir()) + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(CliExitCodeTest, MetricsCheckUsageErrorsExitTwo) {
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN)), 2);
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --bogus file.json"), 2);
}

TEST(CliExitCodeTest, MetricsCheckValidAndInvalidArtifacts) {
  const std::string good = write_temp("good_verify.json", valid_verify_doc() + "\n");
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --verify " + good), 0);

  const std::string truncated = write_temp("trunc_verify.json", "{\"schema\": ");
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --verify " + truncated), 1);

  const std::string wrong = write_temp("wrong_fuzz.json", valid_verify_doc() + "\n");
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --fuzz " + wrong), 1);

  const std::string good_fuzz = write_temp("good_fuzz.json", valid_fuzz_doc());
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --fuzz " + good_fuzz), 0);

  const std::string good_prove = write_temp("good_prove.json", valid_prove_doc());
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --prove " + good_prove), 0);
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --prove " + good_fuzz), 1);

  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --verify /nonexistent.json"), 1);
}

TEST(CliExitCodeTest, MercedFuzzExitCodes) {
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) + " --bogus 1"), 2);
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) + " --runs"), 2);
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) + " --runs -3"), 2);
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) + " --inject-defect none"), 2);
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) + " --replay --runs 1"), 2);
  // A tiny pristine campaign is clean (exit 0); an injected defect is
  // caught (exit 1 — failures found is the expected outcome).
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) + " --seed 1 --runs 4 --minimize off"), 0);
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) +
                " --seed 1 --runs 4 --minimize off --inject-defect drop-cut"),
            1);
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) +
                " --seed 1 --runs 4 --minimize off --inject-defect skew-tap"),
            1);
}

TEST(CliExitCodeTest, MercedFuzzTraceAndStaticAnalysisFlags) {
  // Flag grammar: --static-analysis takes on/off, --trace needs a path.
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) + " --static-analysis bogus"), 2);
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) + " --trace"), 2);

  // A traced campaign writes a Chrome trace metrics_check accepts, with
  // the per-oracle spans named after their oracle.
  const std::string trace = std::string(::testing::TempDir()) + "fuzz_trace.json";
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) +
                " --seed 2 --runs 2 --minimize off --trace " + trace),
            0);
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --trace " + trace), 0);
  std::ifstream in(trace);
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("oracle_static_analysis"), std::string::npos);
  EXPECT_NE(text.str().find("oracle_compile_parity"), std::string::npos);

  // Oracle 6 can be toggled off without changing the campaign verdict.
  EXPECT_EQ(run(std::string(MERCED_FUZZ_BIN) +
                " --seed 2 --runs 2 --minimize off --static-analysis off"),
            0);
}

#ifdef MERCED_CLI_BIN

/// Runs a command, returning its exit code and captured stderr — the
/// --simd contract pins exact usage-error text, not just the code.
std::pair<int, std::string> run_stderr(const std::string& cmd) {
  const std::string err_path = std::string(::testing::TempDir()) + "cli_stderr.txt";
  const int status =
      std::system((cmd + " >/dev/null 2>" + err_path).c_str());
  std::ifstream in(err_path);
  std::stringstream text;
  text << in.rdbuf();
  return {WEXITSTATUS(status), text.str()};
}

TEST(CliExitCodeTest, MercedCliSimdFlagGrammarIsPinned) {
  // Malformed --simd value: usage error with the exact expects-message.
  const auto [bad_code, bad_err] =
      run_stderr(std::string(MERCED_CLI_BIN) + " s27 --simd bogus");
  EXPECT_EQ(bad_code, 2);
  EXPECT_NE(bad_err.find("--simd expects auto, 64, 256 or 512, got 'bogus'"),
            std::string::npos)
      << bad_err;

  // 128 is not in the width model at all — same rejection class.
  const auto [odd_code, odd_err] =
      run_stderr(std::string(MERCED_CLI_BIN) + " s27 --simd 128");
  EXPECT_EQ(odd_code, 2);
  EXPECT_NE(odd_err.find("--simd expects auto, 64, 256 or 512, got '128'"),
            std::string::npos)
      << odd_err;

  // A malformed MERCED_SIMD override fails --simd auto resolution the same
  // way: exit 2 through the usage-error path, message naming the variable.
  const auto [env_code, env_err] = run_stderr(
      "MERCED_SIMD=banana " + std::string(MERCED_CLI_BIN) + " s27 --simd auto");
  EXPECT_EQ(env_code, 2);
  EXPECT_NE(env_err.find("MERCED_SIMD expects auto, 64, 256 or 512, got 'banana'"),
            std::string::npos)
      << env_err;

  // Width 64 is supported everywhere: a pinned-width run must succeed.
  EXPECT_EQ(run(std::string(MERCED_CLI_BIN) + " s27 --lk 8 --simd 64"), 0);
}

TEST(CliExitCodeTest, MercedCliAnalyzeArtifactValidatesAndCorruptionIsRejected) {
  // --analyze-json runs the analyzer (SAT cross-check included) and writes
  // a merced-analyze-v1 artifact metrics_check accepts.
  const std::string art = std::string(::testing::TempDir()) + "analyze_s27.json";
  EXPECT_EQ(run(std::string(MERCED_CLI_BIN) + " s27 --lk 8 --analyze-json " + art),
            0);
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --analyze " + art), 0);
  // Kind confusion both ways: an analyze artifact is not a fuzz artifact.
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --fuzz " + art), 1);

  // A corrupted artifact (schema drift) is rejected, not trusted.
  std::ifstream in(art);
  std::stringstream text;
  text << in.rdbuf();
  std::string corrupt = text.str();
  const std::size_t at = corrupt.find("merced-analyze-v1");
  ASSERT_NE(at, std::string::npos);
  corrupt.replace(at, 17, "merced-analyze-v9");
  const std::string bad = write_temp("analyze_corrupt.json", corrupt);
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --analyze " + bad), 1);

  // --no-collapse (A/B: every testable fault swept) still exits clean.
  EXPECT_EQ(run(std::string(MERCED_CLI_BIN) + " s27 --lk 8 --analyze --no-collapse"),
            0);
}

#ifdef MERCED_CERTCHECK_BIN

/// Reads a whole file (certificate or netlist dump) into a string.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Compiles `s510 --lk 16` through the real CLI and returns the paths of the
/// dumped netlist and emitted certificate. `extra` appends CLI flags (defect
/// injection, --jobs); `tag` keeps parallel tests from sharing files.
/// A defect-injecting run makes the CLI itself exit 1 (its own verifier
/// flags the corrupted artifact) while still emitting the certificate —
/// `expect_exit` pins that.
std::pair<std::string, std::string> cli_certify(const std::string& tag,
                                                const std::string& extra,
                                                int expect_exit = 0) {
  const std::string bench = std::string(::testing::TempDir()) + tag + ".bench";
  const std::string cert = std::string(::testing::TempDir()) + tag + ".cert.json";
  EXPECT_EQ(run(std::string(MERCED_CLI_BIN) + " s510 --lk 16 " + extra +
                " --write-bench " + bench + " --cert " + cert),
            expect_exit);
  return {bench, cert};
}

TEST(CertcheckTest, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run(std::string(MERCED_CERTCHECK_BIN)), 2);
  EXPECT_EQ(run(std::string(MERCED_CERTCHECK_BIN) + " one_arg_only"), 2);
  EXPECT_EQ(run(std::string(MERCED_CERTCHECK_BIN) +
                " /nonexistent.bench /nonexistent.json"),
            2);
}

TEST(CertcheckTest, AcceptsCleanCompileIdenticallyAtJobsOneAndEight) {
  // The certificate must not depend on worker count: same bytes at --jobs 1
  // and --jobs 8, and the independent checker accepts both.
  const auto [bench1, cert1] = cli_certify("cert_j1", "--jobs 1");
  const auto [bench8, cert8] = cli_certify("cert_j8", "--jobs 8");
  EXPECT_EQ(slurp(cert1), slurp(cert8)) << "certificate depends on --jobs";
  EXPECT_EQ(run(std::string(MERCED_CERTCHECK_BIN) + " " + bench1 + " " + cert1), 0);
  EXPECT_EQ(run(std::string(MERCED_CERTCHECK_BIN) + " " + bench8 + " " + cert8), 0);
}

TEST(CertcheckTest, RejectsEachInjectedDefectWithPinnedRule) {
  // merced_cli emits the certificate *after* --inject-defect corrupts the
  // artifact, so the emitted document faithfully restates the defective
  // claims — and the checker must refuse each with its specific rule.
  const auto [bench_dc, cert_dc] =
      cli_certify("cert_dropcut", "--inject-defect drop-cut", /*expect_exit=*/1);
  const auto [dc_code, dc_err] = run_stderr(std::string(MERCED_CERTCHECK_BIN) +
                                            " " + bench_dc + " " + cert_dc);
  EXPECT_EQ(dc_code, 1);
  EXPECT_EQ(dc_err.substr(0, 9), "CERT-CUT:") << dc_err;

  const auto [bench_sr, cert_sr] =
      cli_certify("cert_skewrho", "--inject-defect skew-rho", /*expect_exit=*/1);
  const auto [sr_code, sr_err] = run_stderr(std::string(MERCED_CERTCHECK_BIN) +
                                            " " + bench_sr + " " + cert_sr);
  EXPECT_EQ(sr_code, 1);
  EXPECT_EQ(sr_err.substr(0, 15), "CERT-RET-LEGAL:") << sr_err;
}

// ---- checker mutation tests ---------------------------------------------
//
// One hand-corrupted certificate per checker rule family, each asserting
// the EXACT diagnostic: if someone breaks a recomputation in the checker,
// the corresponding fixture stops rejecting (or the message drifts) and
// this suite fails. The corruptions edit only the certificate TEXT — the
// netlist stays pristine — mirroring how a buggy emitter would lie.

/// The clean s510/lk16 CLI certificate the corruptions start from.
struct CertFixture {
  std::string bench;
  std::string cert_text;
};

const CertFixture& s510_fixture() {
  static const CertFixture* fx = [] {
    auto* f = new CertFixture;
    const auto [bench, cert] = cli_certify("cert_fixture", "");
    f->bench = bench;
    f->cert_text = slurp(cert);
    return f;
  }();
  return *fx;
}

/// Writes a corrupted certificate and returns (exit code, stderr) of the
/// checker on it.
std::pair<int, std::string> check_mutant(const std::string& name,
                                         const std::string& text) {
  const std::string path = write_temp("cert_mut_" + name + ".json", text);
  return run_stderr(std::string(MERCED_CERTCHECK_BIN) + " " +
                    s510_fixture().bench + " " + path);
}

/// Replaces the first `key": N` at or after `from` with N+1 — the canonical
/// "off by one lie". `from` lets callers target a repeated key inside a
/// specific certificate section (e.g. the eq2 block's "dffs", not the
/// netlist summary's).
std::string bump_first_uint(std::string text, const std::string& key,
                            std::size_t from = 0) {
  const std::size_t at = text.find("\"" + key + "\": ", from);
  EXPECT_NE(at, std::string::npos) << key;
  std::size_t digits = at + key.size() + 4;
  std::size_t end = digits;
  while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end]))) ++end;
  const unsigned long long v = std::stoull(text.substr(digits, end - digits));
  return text.substr(0, digits) + std::to_string(v + 1) + text.substr(end);
}

TEST(CertcheckMutationTest, DriftedIotaIsRejectedWithExactDiagnostic) {
  const auto [code, err] =
      check_mutant("iota", bump_first_uint(s510_fixture().cert_text, "iota"));
  EXPECT_EQ(code, 1);
  EXPECT_EQ(err, "CERT-IOTA: cluster 0 claims iota=17, recomputation gives 16\n");
}

TEST(CertcheckMutationTest, UnsealedRetimableCutIsRejectedWithExactDiagnostic) {
  // Zeroing rho leaves every retimed weight at its structural register
  // count; the retimable cut n54 then crosses with 0 registers — unsealed.
  std::string text = s510_fixture().cert_text;
  const std::size_t at = text.find("\"rho\": {");
  ASSERT_NE(at, std::string::npos);
  const std::size_t close = text.find('}', at);
  ASSERT_NE(close, std::string::npos);
  text = text.substr(0, at) + "\"rho\": {" + text.substr(close);
  const auto [code, err] = check_mutant("zero_rho", text);
  EXPECT_EQ(code, 1);
  EXPECT_EQ(err,
            "CERT-RET-SEALED: retimable cut 'n54' crossing to 'n59' carries 0 "
            "registers after retiming\n");
}

TEST(CertcheckMutationTest, BrokenEq2SumIsRejectedWithExactDiagnostic) {
  // The netlist summary block also carries a "dffs" key; start the search at
  // the eq2 section so the lie lands on the per-SCC witness.
  const std::string& text = s510_fixture().cert_text;
  const std::size_t eq2_at = text.find("\"eq2\"");
  ASSERT_NE(eq2_at, std::string::npos);
  const auto [code, err] =
      check_mutant("eq2", bump_first_uint(text, "dffs", eq2_at));
  EXPECT_EQ(code, 1);
  EXPECT_EQ(err,
            "CERT-EQ2: scc 'n0': certificate claims dffs=5 cuts_on_scc=9, "
            "recomputation gives dffs=4 cuts_on_scc=9\n");
}

TEST(CertcheckMutationTest, AreaMiscountIsRejectedWithExactDiagnostic) {
  const auto [code, err] = check_mutant(
      "area", bump_first_uint(s510_fixture().cert_text, "cbit_area_with_retiming"));
  EXPECT_EQ(code, 1);
  EXPECT_EQ(err, "CERT-AREA: cbit_area_with_retiming=287, arithmetic gives 286\n");
}

TEST(CertcheckMutationTest, TruncatedJsonIsRejectedAsParseError) {
  const std::string& text = s510_fixture().cert_text;
  const auto [code, err] = check_mutant("trunc", text.substr(0, text.size() / 2));
  EXPECT_EQ(code, 1);
  EXPECT_EQ(err.substr(0, 25), "CERT-PARSE: json at byte ") << err;
}

#endif  // MERCED_CERTCHECK_BIN

#endif  // MERCED_CLI_BIN

#ifdef MERCED_DIFF_BIN

/// Runs a command, returning its exit code and captured stdout (the diff
/// table, whose verdict line names regressed metrics, goes to stdout).
std::pair<int, std::string> run_stdout(const std::string& cmd) {
  const std::string out_path = std::string(::testing::TempDir()) + "cli_stdout.txt";
  const int status = std::system((cmd + " 2>/dev/null >" + out_path).c_str());
  std::ifstream in(out_path);
  std::stringstream text;
  text << in.rdbuf();
  return {WEXITSTATUS(status), text.str()};
}

/// Minimal metrics artifact with a controlled phase time and p99 (ns).
std::string diff_metrics_doc(const std::string& cpu, double total_seconds,
                             long long p99_ns) {
  std::ostringstream os;
  os << R"({"schema": "merced-metrics-v2", "run": {"tool": "t", "circuit": "c",)"
     << R"( "lk": 8, "jobs": 1, "starts": 1, "simd": 64, "cpu": ")" << cpu
     << R"(", "hardware_concurrency": 4}, "counters": {},)"
     << R"( "phases": [{"name": "kernel", "count": 4, "total_seconds": )"
     << total_seconds << R"(, "max_seconds": )" << total_seconds
     << R"(}], "histograms": [{"name": "kernel", "count": 4, "sum": 4000,)"
     << R"( "min": 500, "max": )" << p99_ns << R"(, "p50": 800, "p90": 900,)"
     << R"( "p99": )" << p99_ns << R"(, "buckets": []}]})";
  return os.str();
}

TEST(CliExitCodeTest, MercedMetricsDiffExitCodes) {
  const std::string diff = MERCED_DIFF_BIN;
  const std::string same = write_temp("diff_same.json", diff_metrics_doc("x", 1.0, 1000));
  const std::string slow = write_temp("diff_slow.json", diff_metrics_doc("x", 2.5, 1000));
  const std::string stale =
      write_temp("diff_stale.json", diff_metrics_doc("x", 1.0, 2000000000LL));
  const std::string fast =
      write_temp("diff_fast.json", diff_metrics_doc("x", 1.0, 1000000000LL));
  const std::string other_host =
      write_temp("diff_host.json", diff_metrics_doc("y", 1.0, 1000));

  // Usage and unreadable inputs: exit 2.
  EXPECT_EQ(run(diff), 2);
  EXPECT_EQ(run(diff + " " + same), 2);
  EXPECT_EQ(run(diff + " --bogus " + same + " " + same), 2);
  EXPECT_EQ(run(diff + " --rel banana " + same + " " + same), 2);
  EXPECT_EQ(run(diff + " " + same + " /nonexistent.json"), 2);

  // Same binary, same config: exit 0.
  EXPECT_EQ(run(diff + " " + same + " " + same), 0);

  // A slower current run: exit 1, verdict naming the phase and direction.
  const auto [slow_code, slow_out] = run_stdout(diff + " " + same + " " + slow);
  EXPECT_EQ(slow_code, 1);
  EXPECT_NE(slow_out.find("verdict: REGRESSION"), std::string::npos) << slow_out;
  EXPECT_NE(slow_out.find("phase kernel total_seconds slower"), std::string::npos)
      << slow_out;

  // The acceptance scenario: baseline p99 inflated 2x relative to current.
  // The current run is "faster" beyond threshold — stale baseline, exit 1.
  const auto [fast_code, fast_out] = run_stdout(diff + " " + stale + " " + fast);
  EXPECT_EQ(fast_code, 1);
  EXPECT_NE(fast_out.find("hist kernel p99_seconds faster"), std::string::npos)
      << fast_out;
  EXPECT_NE(fast_out.find("refresh the committed baseline"), std::string::npos)
      << fast_out;

  // Cross-host timing comparison refuses (exit 2) unless --ignore-host.
  EXPECT_EQ(run(diff + " " + same + " " + other_host), 2);
  EXPECT_EQ(run(diff + " --ignore-host " + same + " " + other_host), 0);
}

TEST(CliExitCodeTest, MetricsCheckValidatesDiffArtifacts) {
  const std::string same = write_temp("chk_same.json", diff_metrics_doc("x", 1.0, 1000));
  const std::string out = std::string(::testing::TempDir()) + "chk_diff_out.json";
  EXPECT_EQ(run(std::string(MERCED_DIFF_BIN) + " " + same + " " + same +
                " --json " + out),
            0);
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --diff " + out), 0);
  // A metrics artifact is not a diff artifact, and vice versa.
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --diff " + same), 1);
  EXPECT_EQ(run(std::string(METRICS_CHECK_BIN) + " --metrics " + out), 1);
}

#endif  // MERCED_DIFF_BIN

#endif  // METRICS_CHECK_BIN && MERCED_FUZZ_BIN

}  // namespace
}  // namespace merced
