// Fuzz-ish robustness tests for the .bench parser.
//
// Contract: any malformed input produces a clean std::exception (for syntax
// problems, a ".bench parse error at line N" runtime_error) — never a
// crash, never a hang, never a silently-wrong netlist. A stress file and a
// deterministic garbage generator cover the "never hang" half.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>

#include "circuits/generator.h"
#include "netlist/bench_io.h"
#include "netlist/netlist.h"

namespace merced {
namespace {

/// Expects a parse failure whose message carries a line reference.
void expect_parse_error(const std::string& text, const std::string& fragment = "") {
  try {
    parse_bench(text);
    FAIL() << "expected parse error for:\n" << text;
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line"), std::string::npos)
        << "error should name the offending line: " << what;
    if (!fragment.empty()) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "expected '" << fragment << "' in: " << what;
    }
  }
}

TEST(BenchIoFuzzTest, UnterminatedGateCall) {
  expect_parse_error("INPUT(a)\ny = AND(a, a\n");
  expect_parse_error("INPUT(a)\ny = AND a, a)\n");
  expect_parse_error("INPUT(a)\ny = )AND(a\n");
}

TEST(BenchIoFuzzTest, UndefinedFanin) {
  expect_parse_error("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "ghost");
}

TEST(BenchIoFuzzTest, UndefinedOutput) {
  expect_parse_error("INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n", "ghost");
}

TEST(BenchIoFuzzTest, DuplicateOutput) {
  expect_parse_error("INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n", "duplicate");
}

TEST(BenchIoFuzzTest, DuplicateDefinition) {
  expect_parse_error("INPUT(a)\ny = NOT(a)\ny = BUF(a)\n", "duplicate");
  expect_parse_error("INPUT(a)\nINPUT(a)\n", "duplicate");
  expect_parse_error("INPUT(a)\na = NOT(a)\n", "duplicate");
}

TEST(BenchIoFuzzTest, UnknownGateFunction) {
  expect_parse_error("INPUT(a)\ny = FROB(a)\n", "FROB");
  expect_parse_error("INPUT(a)\ny = (a)\n");
}

TEST(BenchIoFuzzTest, MalformedInputOutputDecls) {
  expect_parse_error("INPUT()\n");
  expect_parse_error("INPUT(a, b)\n");
  expect_parse_error("WIBBLE(a)\n");
  expect_parse_error("INPUT(a)\n = NOT(a)\n");
}

TEST(BenchIoFuzzTest, WrongArity) {
  // Arity violations surface at finalize(); still a clean exception.
  EXPECT_THROW(parse_bench("INPUT(a)\ny = NOT(a, a)\n"), std::exception);
  EXPECT_THROW(parse_bench("INPUT(a)\ny = AND(a)\n"), std::exception);
  EXPECT_THROW(parse_bench("INPUT(a)\ny = AND()\n"), std::exception);
}

TEST(BenchIoFuzzTest, CombinationalCycleIsRejected) {
  EXPECT_THROW(parse_bench("INPUT(a)\nx = AND(a, y)\ny = BUF(x)\n"), std::exception);
  EXPECT_THROW(parse_bench("INPUT(a)\ny = AND(y, y)\n"), std::exception);
  // A cycle through a DFF is a legal sequential loop, not an error.
  EXPECT_NO_THROW(parse_bench("INPUT(a)\nq = DFF(x)\nx = AND(a, q)\nOUTPUT(x)\n"));
}

TEST(BenchIoFuzzTest, WeirdWhitespaceAndCommentsAreFine) {
  const Netlist nl = parse_bench(
      "# comment only\r\n"
      "\t INPUT( a )  # trailing\r\n"
      "INPUT(b)\n"
      "\n"
      "OUTPUT(y)\n"
      "y   =   NAND(  a ,\tb )  \r\n");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(BenchIoFuzzTest, NoTrailingNewlineParses) {
  const Netlist nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)");
  EXPECT_EQ(nl.size(), 2u);
}

TEST(BenchIoFuzzTest, TenThousandLineStressFile) {
  // 10k-gate inverter chain with interleaved comments: must parse quickly
  // and correctly (the test itself is the no-hang guard via CTest timeout).
  std::string text = "INPUT(n0)\nOUTPUT(n10000)\n";
  for (int i = 1; i <= 10000; ++i) {
    if (i % 97 == 0) text += "# checkpoint " + std::to_string(i) + "\n";
    text += "n" + std::to_string(i) + " = NOT(n" + std::to_string(i - 1) + ")\n";
  }
  const Netlist nl = parse_bench(text, "chain10k");
  EXPECT_EQ(nl.size(), 10001u);
  EXPECT_TRUE(nl.finalized());
}

TEST(BenchIoFuzzTest, DeterministicGarbageNeverCrashes) {
  // Printable-ASCII garbage lines: every outcome must be either a parsed
  // netlist or a clean std::exception.
  std::mt19937_64 rng(20260805);
  const std::string alphabet = "ABCWXYZabcnot=(),# \t0123456789";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int lines = 1 + static_cast<int>(rng() % 8);
    for (int l = 0; l < lines; ++l) {
      const int len = static_cast<int>(rng() % 40);
      for (int c = 0; c < len; ++c) text += alphabet[rng() % alphabet.size()];
      text += '\n';
    }
    try {
      parse_bench(text);
    } catch (const std::exception&) {
      // fine — clean failure
    }
  }
}

TEST(BenchIoFuzzTest, RoundTripSurvivesReparse) {
  const std::string src =
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(s)\ns = XOR(a, q)\ny = NAND(s, b)\n";
  const Netlist nl = parse_bench(src, "rt");
  const Netlist back = parse_bench(write_bench(nl), "rt2");
  EXPECT_EQ(back.size(), nl.size());
  EXPECT_EQ(back.inputs().size(), nl.inputs().size());
  EXPECT_EQ(back.outputs().size(), nl.outputs().size());
  EXPECT_EQ(back.dffs().size(), nl.dffs().size());
}

TEST(BenchIoFuzzTest, MissingFileIsCleanError) {
  EXPECT_THROW(parse_bench_file("/nonexistent/nope.bench"), std::runtime_error);
}

/// write_bench ∘ parse_bench must be a fixpoint: once serialized, another
/// parse/write cycle reproduces the text byte-for-byte (and the reparsed
/// netlist is gate-for-gate identical). Checked over a spread of generated
/// sequential circuits, not one hand-picked example.
TEST(BenchIoFuzzTest, GeneratedCircuitsRoundTripToFixpoint) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SyntheticSpec spec;
    spec.name = "rt" + std::to_string(seed);
    spec.num_pis = 4 + seed % 5;
    spec.num_dffs = 2 + seed % 7;
    spec.num_gates = 20 + static_cast<std::size_t>(seed) * 3;
    spec.num_invs = 4 + seed % 6;
    spec.target_area = static_cast<AreaUnits>(10 * spec.num_dffs + spec.num_invs +
                                              2 * spec.num_gates + 15);
    spec.seed = seed;
    const Netlist nl = generate_circuit(spec);

    const std::string s1 = write_bench(nl);
    const Netlist reparsed = parse_bench(s1, spec.name);
    const std::string s2 = write_bench(reparsed);
    EXPECT_EQ(s1, s2) << "write/parse/write drifted for seed " << seed;

    ASSERT_EQ(reparsed.size(), nl.size());
    for (GateId id = 0; id < nl.size(); ++id) {
      const Gate& a = nl.gate(id);
      const Gate& b = reparsed.gate(id);
      EXPECT_EQ(a.type, b.type) << "gate " << id << " seed " << seed;
      EXPECT_EQ(a.name, b.name) << "gate " << id << " seed " << seed;
      ASSERT_EQ(a.fanins.size(), b.fanins.size()) << "gate " << id << " seed " << seed;
      for (std::size_t p = 0; p < a.fanins.size(); ++p) {
        EXPECT_EQ(nl.gate(a.fanins[p]).name, reparsed.gate(b.fanins[p]).name)
            << "gate " << id << " pin " << p << " seed " << seed;
      }
    }
    EXPECT_EQ(reparsed.outputs().size(), nl.outputs().size());
  }
}

/// `.bench` has no quoting, so names the grammar can't express must be
/// rejected at write time — not silently serialized into a file that
/// reparses as a different circuit (or not at all).
TEST(BenchIoFuzzTest, UnserializableNamesAreRejectedAtWrite) {
  for (const std::string bad : {"a b", "x#y", "f(z", "p)q", "m,n", "k=v", "\tw"}) {
    Netlist nl("bad");
    const GateId a = nl.add_gate(GateType::kInput, "a");
    const GateId y = nl.add_gate(GateType::kNot, bad, {a});
    nl.mark_output(y);
    nl.finalize();
    EXPECT_THROW(write_bench(nl), std::invalid_argument) << "name '" << bad << "'";
  }
}

}  // namespace
}  // namespace merced
