// Golden and property tests for the SAT oracles (src/sat/redundancy.h,
// src/sat/equivalence.h) — the layer that turns the kernel's "undetected"
// into a machine-checked "redundant" and the compiler's retiming plan into
// a proved-equivalent circuit.
//
// Pinned here:
//  * the hand-built redundant cone from sim_kernel_test is *proved*
//    redundant (UNSAT certificates, zero unexplained gaps);
//  * a known-irredundant cone yields SAT verdicts whose detecting vectors
//    the event-driven kernel confirms one by one;
//  * on random compiled circuits every fault's verdict is consistent
//    between sweep and SAT, at jobs=1 and jobs=8;
//  * the compiled retiming plan proves equivalent (base + induction), and
//    corrupting either the plan or the tap formula flips the verdict.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "circuits/generator.h"
#include "core/merced.h"
#include "graph/circuit_graph.h"
#include "netlist/bench_io.h"
#include "partition/clustering.h"
#include "retiming/retime_graph.h"
#include "sat/equivalence.h"
#include "sat/redundancy.h"
#include "sim/cone.h"

namespace merced {
namespace {

Clustering whole_circuit_cluster(const CircuitGraph& g) {
  Clustering c;
  c.cluster_of.assign(g.num_nodes(), kNoCluster);
  c.clusters.emplace_back();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.is_pi(v)) {
      c.cluster_of[v] = 0;
      c.clusters[0].push_back(v);
    }
  }
  return c;
}

SyntheticSpec random_spec(std::uint64_t seed) {
  std::mt19937_64 rng(0xabcdef1234567890ULL ^ (seed * 0x9e3779b97f4a7c15ULL));
  auto in = [&](std::size_t lo, std::size_t hi) { return lo + rng() % (hi - lo + 1); };
  SyntheticSpec s;
  s.name = "sat" + std::to_string(seed);
  s.num_pis = in(4, 10);
  s.num_dffs = in(3, 12);
  s.num_gates = in(30, 90);
  s.num_invs = in(5, 20);
  s.target_area = (s.num_gates + s.num_invs) * in(3, 5);
  s.scc_dff_fraction = static_cast<double>(in(5, 10)) / 10.0;
  s.seed = seed * 7 + 1;
  return s;
}

// ------------------------------------------------- redundancy prover ---

// The sim_kernel_test cone: red = OR(a, NOT(a)) is constant 1, z = OR(red,
// CONST1) is constant 1 — stuck-at-1 faults there are undetectable by
// construction. The prover must close every one of those gaps with an
// UNSAT certificate.
TEST(SatRedundancy, HandBuiltRedundantConeIsProved) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nINPUT(g)\n"
      "OUTPUT(y)\nOUTPUT(z)\nOUTPUT(w)\n"
      "wide = AND(a, b, c, d, e, f, g)\n"
      "xn = NOT(a)\n"
      "red = OR(a, xn)\n"
      "k1 = CONST1()\n"
      "par = XOR(b, c, d, e)\n"
      "m = MUX(a, par, wide)\n"
      "y = NOR(m, red)\n"
      "z = OR(red, k1)\n"
      "w = XNOR(wide, par)\n");
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);

  const sat::CutProof proof = sat::prove_cut_coverage(g, c, 0);
  EXPECT_GT(proof.total_faults, 0u);
  EXPECT_GT(proof.proved_redundant, 0u) << "the cone contains redundant faults";
  EXPECT_TRUE(proof.fully_explained())
      << proof.unknown << " unknown, " << proof.inconsistent << " inconsistent";
  // Closure: every fault is either sweep-detected (and SAT-confirmed with a
  // replayed vector) or carries an UNSAT certificate.
  EXPECT_EQ(proof.detected + proof.proved_redundant, proof.total_faults);
  EXPECT_EQ(proof.replayed, proof.proved_detectable)
      << "some SAT vector did not replay on the kernel";
  for (const sat::FaultVerdict& v : proof.verdicts) {
    EXPECT_TRUE(v.consistent) << "fault on gate " << v.fault.gate;
    if (!v.detected_by_sweep) {
      EXPECT_EQ(v.proof, sat::FaultVerdict::Proof::kRedundant);
    }
  }
}

// A cone with no redundancy: every fault must come back SAT with a vector
// the kernel confirms, and nothing may be proved redundant.
TEST(SatRedundancy, IrredundantConeYieldsReplayableVectors) {
  // XOR spines propagate every pin flip, so each collapsed fault here has a
  // test (the NAND/NOR variant of this cone in sim_kernel_test hides one
  // genuinely redundant pin fault — the prover found it during bring-up).
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n"
      "s = XOR(a, b)\ny = XOR(s, c)\nz = AND(s, c)\n");
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);

  const sat::CutProof proof = sat::prove_cut_coverage(g, c, 0);
  EXPECT_EQ(proof.proved_redundant, 0u);
  EXPECT_EQ(proof.detected, proof.total_faults);
  EXPECT_EQ(proof.proved_detectable, proof.total_faults);
  EXPECT_EQ(proof.replayed, proof.total_faults);
  EXPECT_TRUE(proof.fully_explained());
  for (const sat::FaultVerdict& v : proof.verdicts) {
    ASSERT_EQ(v.proof, sat::FaultVerdict::Proof::kDetectable);
    ASSERT_EQ(v.pattern.size(), g.netlist().inputs().size());
    EXPECT_TRUE(detects_pattern(ConeSimulator(g, c, 0), v.fault, v.pattern));
  }
}

// Skipping the SAT cross-check of detected faults must not change the
// redundancy verdicts, only the solve count.
TEST(SatRedundancy, ProveDetectedOffProvesOnlyTheResidue) {
  const Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\n"
      "xn = NOT(a)\nred = OR(a, xn)\nz = AND(red, b)\n");
  const CircuitGraph g(nl);
  const Clustering c = whole_circuit_cluster(g);

  sat::ProveOptions opt;
  opt.prove_detected = false;
  const sat::CutProof lean = sat::prove_cut_coverage(g, c, 0, opt);
  const sat::CutProof full = sat::prove_cut_coverage(g, c, 0);
  EXPECT_EQ(lean.proved_redundant, full.proved_redundant);
  EXPECT_EQ(lean.solves, lean.total_faults - lean.detected);
  EXPECT_EQ(full.solves, full.total_faults);
  EXPECT_TRUE(lean.fully_explained());
}

// On random compiled circuits, every per-CUT verdict must be consistent
// between the exhaustive sweep and the SAT prover, independent of the
// sweep's sharding width.
TEST(SatRedundancy, RandomCompiledCircuitsAreFullyExplained) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Netlist nl = generate_circuit(random_spec(seed));
    MercedConfig config;
    config.lk = 10;
    const MercedResult r = compile(nl, config);
    const CircuitGraph g(nl);
    for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
      sat::ProveOptions opt;
      opt.jobs = jobs;
      for (std::size_t ci = 0; ci < r.partitions.clusters.size(); ++ci) {
        const sat::CutProof proof = sat::prove_cut_coverage(g, r.partitions, ci, opt);
        EXPECT_TRUE(proof.fully_explained())
            << "seed " << seed << " cluster " << ci << " jobs " << jobs << ": "
            << proof.unknown << " unknown, " << proof.inconsistent << " inconsistent";
        EXPECT_EQ(proof.detected + proof.proved_redundant, proof.total_faults)
            << "seed " << seed << " cluster " << ci;
      }
    }
  }
}

// ----------------------------------------------- equivalence checker ---

// The compiler's own retiming plan must prove equivalent, base and step.
TEST(SatEquivalence, CompiledRetimingProvesEquivalent) {
  for (std::uint64_t seed : {1u, 4u, 9u}) {
    const Netlist nl = generate_circuit(random_spec(seed));
    MercedConfig config;
    const PreparedCircuit prepared(nl, config.flow);
    const MercedResult r = compile(prepared, config);

    const sat::EquivalenceResult res =
        sat::check_retiming_equivalence(prepared.graph, r.retiming.rho);
    EXPECT_EQ(res.status, sat::EquivStatus::kProved) << "seed " << seed << ": " << res.error;
    EXPECT_TRUE(res.base_proved) << "seed " << seed;
    EXPECT_TRUE(res.induction_proved) << "seed " << seed;
    EXPECT_FALSE(res.counterexample.has_value());
  }
}

// The identity retiming is structurally collapsed: the miter should fold
// away and cost (nearly) no conflicts.
TEST(SatEquivalence, IdentityRetimingCollapsesStructurally) {
  const Netlist nl = generate_circuit(random_spec(5));
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  const Retiming identity(rg.num_vertices(), 0);

  const sat::EquivalenceResult res = sat::check_retiming_equivalence(g, identity);
  EXPECT_EQ(res.status, sat::EquivStatus::kProved) << res.error;
  EXPECT_EQ(res.stats.conflicts, 0u) << "identity miter should fold by sharing";
  EXPECT_GT(res.cache_hits, 0u);
}

// A deterministic register-moving retiming: ρ(g) = 1 pushes the DFF from
// g's output back onto both of its inputs (w_ρ(a→g) = 1, w_ρ(g→y) = 0).
// The XOR makes every input change observable, so a one-cycle tap error
// cannot hide.
struct Pipeline {
  Netlist nl = parse_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
      "g = XOR(a, b)\nd1 = DFF(g)\ny = NOT(d1)\n");
  CircuitGraph graph{nl};
  RetimeGraph rg{graph};
  Retiming rho;

  Pipeline() : rho(rg.num_vertices(), 0) {
    const NodeId g_node = nl.find("g");
    rho.at(rg.vertex_of(g_node)) = 1;
  }
};

// Sanity: the hand-built retiming itself is legal and proves equivalent.
TEST(SatEquivalence, HandBuiltBackwardMoveProvesEquivalent) {
  const Pipeline p;
  ASSERT_TRUE(p.rg.is_legal(p.rho));
  const sat::EquivalenceResult res = sat::check_retiming_equivalence(p.graph, p.rho);
  EXPECT_EQ(res.status, sat::EquivStatus::kProved) << res.error;
  EXPECT_EQ(res.retimed_registers, 2u) << "expected one register per XOR input";
}

// A corrupted tap formula (the fuzz "skew-tap" defect) must flip a genuine
// retiming to refuted — with an unconfirmable counterexample, because the
// machines themselves still agree; only the checker's window is wrong.
TEST(SatEquivalence, SkewedTapFormulaIsRefuted) {
  const Pipeline p;
  sat::EquivalenceOptions opt;
  opt.tap_skew = 1;
  const sat::EquivalenceResult res =
      sat::check_retiming_equivalence(p.graph, p.rho, opt);
  ASSERT_EQ(res.status, sat::EquivStatus::kRefuted)
      << "the skewed tap formula never tripped the checker: " << res.error;
  ASSERT_TRUE(res.counterexample.has_value());
  EXPECT_FALSE(res.counterexample->confirmed)
      << "honest replay agreed with a skewed miter hit";
}

// An illegal plan (made illegal by corrupting one label so a retimed edge
// weight goes negative) is a build failure, not a crash.
TEST(SatEquivalence, IllegalRetimingFailsToBuild) {
  const Netlist nl = generate_circuit(random_spec(2));
  MercedConfig config;
  const PreparedCircuit prepared(nl, config.flow);
  const MercedResult r = compile(prepared, config);
  const RetimeGraph rg(prepared.graph);

  Retiming bad = r.retiming.rho;
  ASSERT_FALSE(bad.empty());
  // Push one edge's sink label far enough negative that its retimed weight
  // (w + ρ(to) − ρ(from)) violates Eq. 3.
  ASSERT_FALSE(rg.edges().empty());
  bad[rg.edges()[0].to] -= 1000;
  ASSERT_FALSE(rg.is_legal(bad));

  const sat::EquivalenceResult res = sat::check_retiming_equivalence(prepared.graph, bad);
  EXPECT_EQ(res.status, sat::EquivStatus::kBuildFailed);
  EXPECT_FALSE(res.error.empty());
}

}  // namespace
}  // namespace merced
