// End-to-end integration: the full Merced pipeline feeding the BIST
// hardware models and the fault simulator — the paper's complete story on
// s27 and a small synthetic circuit.
#include <gtest/gtest.h>

#include <set>

#include "bist/cbit.h"
#include "bist/cbit_area.h"
#include "circuits/registry.h"
#include "circuits/s27.h"
#include "core/merced.h"
#include "graph/circuit_graph.h"
#include "graph/scc.h"
#include "retiming/cut_retiming.h"
#include "retiming/retime_graph.h"
#include "retiming/retimed_netlist.h"
#include "sim/cone.h"
#include "sim/simulator.h"

namespace merced {
namespace {

// Whole-flow fixture: compile once, share across assertions.
struct CompiledS27 : ::testing::Test {
  static const MercedResult& result() {
    static const MercedResult r = [] {
      MercedConfig config;
      config.lk = 3;
      config.flow.seed = 27;
      return compile(make_s27(), config);
    }();
    return r;
  }
};

TEST_F(CompiledS27, PartitionIsValidPic) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  result().partitions.validate(g);
  for (std::size_t i = 0; i < result().partitions.count(); ++i) {
    EXPECT_LE(input_count(g, result().partitions, i), 3u);
  }
}

TEST_F(CompiledS27, EveryCutGetsTestHardware) {
  EXPECT_EQ(result().retiming.retimable.size() + result().retiming.multiplexed.size(),
            result().cut_net_ids.size());
}

TEST_F(CompiledS27, EveryPartitionGetsACbitOfFeasibleWidth) {
  for (std::size_t iota : result().partition_inputs) {
    if (iota == 0) continue;
    const auto len = smallest_standard_length(iota);
    ASSERT_TRUE(len.has_value());
    Cbit cbit(*len);  // constructible hardware
    EXPECT_GE(*len, iota);
  }
}

TEST_F(CompiledS27, PseudoExhaustiveTestDetectsEveryDetectableFault) {
  // The headline PET guarantee across ALL partitions of the compiled
  // result: exhaustive patterns at each CUT's inputs detect every
  // non-redundant combinational fault inside the CUT.
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  std::size_t total = 0, detected = 0;
  for (std::size_t ci = 0; ci < result().partitions.count(); ++ci) {
    const ConeSimulator cone(g, result().partitions, ci);
    if (cone.gates().empty()) continue;
    const CoverageResult cov = exhaustive_coverage(cone);
    total += cov.total_faults;
    detected += cov.detected;
  }
  ASSERT_GT(total, 0u);
  // s27's partitions contain a couple of combinationally redundant faults;
  // everything else must be caught.
  EXPECT_GE(static_cast<double>(detected) / static_cast<double>(total), 0.9);
}

TEST_F(CompiledS27, MisrSignatureCatchesFaultyCut) {
  // Drive one CUT exhaustively through a TPG CBIT, compact its outputs in a
  // PSA CBIT: a faulty CUT must produce a different signature.
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  for (std::size_t ci = 0; ci < result().partitions.count(); ++ci) {
    const ConeSimulator cone(g, result().partitions, ci);
    const std::size_t n = cone.cut_inputs().size();
    if (cone.gates().empty() || n < 2) continue;

    const std::vector<Fault> faults = cone.cluster_faults();
    ASSERT_FALSE(faults.empty());
    const Fault& f = faults[0];

    auto run_signature = [&](const Fault* fault) {
      Cbit tpg(static_cast<unsigned>(std::max<std::size_t>(2, n)));
      tpg.set_mode(CbitMode::kTpg);
      tpg.set_state(0);
      Misr psa(16);
      for (std::uint64_t cycle = 0; cycle < tpg.tpg_cycles(); ++cycle) {
        std::vector<std::uint64_t> in(n);
        for (std::size_t i = 0; i < n; ++i) {
          in[i] = (tpg.state() >> i) & 1 ? ~std::uint64_t{0} : 0;
        }
        const auto out = cone.eval(in, fault);
        std::uint64_t word = 0;
        for (std::size_t o = 0; o < out.size(); ++o) word |= (out[o] & 1) << o;
        psa.step(word);
        tpg.step(0);
      }
      return psa.signature();
    };

    const std::uint64_t good = run_signature(nullptr);
    const std::uint64_t bad = run_signature(&f);
    // The first collapsed fault of each cluster is detectable in s27.
    EXPECT_NE(good, bad) << "cluster " << ci;
    return;  // one cluster suffices; the sweep above covers the rest
  }
}

TEST_F(CompiledS27, RetimedCircuitStaysEquivalent) {
  const Netlist nl = make_s27();
  const CircuitGraph g(nl);
  const RetimeGraph rg(g);
  ASSERT_TRUE(rg.is_legal(result().retiming.rho));
  const RetimedCircuit rt = apply_retiming(g, rg, result().retiming.rho);

  std::mt19937_64 rng(7);
  std::vector<std::vector<bool>> warmup(10, std::vector<bool>(4));
  for (auto& v : warmup) {
    for (std::size_t i = 0; i < 4; ++i) v[i] = rng() & 1;
  }
  const std::vector<bool> init(3, false);
  const auto rt_state = compute_retimed_initial_state(nl, rt, init, warmup);

  Simulator orig(nl), retimed(rt.netlist);
  orig.set_state(init);
  for (const auto& v : warmup) orig.step(v);
  retimed.set_state(rt_state);
  for (int cycle = 0; cycle < 100; ++cycle) {
    std::vector<bool> in(4);
    for (std::size_t i = 0; i < 4; ++i) in[i] = rng() & 1;
    orig.step(in);
    retimed.step(in);
    ASSERT_EQ(orig.output_values(), retimed.output_values()) << "cycle " << cycle;
  }
}

TEST_F(CompiledS27, TestingTimeFollowsWidestPartition) {
  std::size_t widest = 0;
  for (std::size_t iota : result().partition_inputs) widest = std::max(widest, iota);
  const auto len = smallest_standard_length(widest);
  ASSERT_TRUE(len.has_value());
  EXPECT_EQ(pipe_testing_time(*len), std::uint64_t{1} << *len);
}

// ------------------------- mid-size synthetic circuit, full pipeline -----

TEST(IntegrationMid, S510FullFlowInvariants) {
  MercedConfig config;
  config.lk = 8;
  const Netlist nl = load_benchmark("s510");
  const MercedResult r = compile(nl, config);
  ASSERT_TRUE(r.feasible);

  const CircuitGraph g(nl);
  r.partitions.validate(g);
  for (std::size_t i = 0; i < r.partitions.count(); ++i) {
    EXPECT_LE(input_count(g, r.partitions, i), 8u);
  }

  // Retiming plan is legal and covers the cut set.
  const RetimeGraph rg(g);
  EXPECT_TRUE(rg.is_legal(r.retiming.rho));
  EXPECT_EQ(r.retiming.retimable.size() + r.retiming.multiplexed.size(),
            r.cuts.nets_cut);

  // Exhaustively test three partitions end to end. By construction the
  // exhaustive sweep detects 100% of *detectable* faults — anything it
  // misses is combinationally redundant w.r.t. the CUT's I/O. Synthetic
  // random logic carries noticeably more redundancy than synthesized
  // netlists, so the raw coverage floor here is modest.
  std::size_t tested = 0;
  for (std::size_t ci = 0; ci < r.partitions.count() && tested < 3; ++ci) {
    const ConeSimulator cone(g, r.partitions, ci);
    if (cone.gates().size() < 3 || cone.cut_inputs().size() > 8) continue;
    const CoverageResult cov = exhaustive_coverage(cone);
    EXPECT_GT(cov.coverage(), 0.5) << "cluster " << ci;
    EXPECT_EQ(cov.detected + cov.undetected.size(), cov.total_faults);
    ++tested;
  }
  EXPECT_GT(tested, 0u);
}

TEST(IntegrationMid, BetaTradeoff) {
  // Lowering beta restricts cuts on SCCs; the resulting plan needs fewer
  // multiplexed cells (less area) but the cut set / partitioning changes —
  // the paper's testing-time-vs-area trade-off knob (§4.1).
  const Netlist nl = load_benchmark("s820");
  MercedConfig strict;
  strict.lk = 16;
  strict.beta = 1;
  MercedConfig relaxed;
  relaxed.lk = 16;
  relaxed.beta = 50;
  const MercedResult rs = compile(nl, strict);
  const MercedResult rr = compile(nl, relaxed);
  // With beta = 1 no SCC may be cut beyond its register supply: the
  // aggregate accounting shows zero multiplexed cells.
  EXPECT_EQ(rs.area.multiplexed_cuts, 0u);
  EXPECT_GE(rr.cuts.nets_cut, 1u);
}

}  // namespace
}  // namespace merced
