#include <gtest/gtest.h>

#include <sstream>

#include "circuits/registry.h"
#include "circuits/s27.h"
#include "core/area_report.h"
#include "core/merced.h"
#include "core/paper_data.h"
#include "core/table_printer.h"
#include "netlist/area_model.h"

namespace merced {
namespace {

// ------------------------------------------------------------ area report ---

TEST(AreaReportTest, CbitAreaFormulas) {
  AreaReport r;
  r.circuit_area = 1000;
  r.retimable_cuts = 10;
  r.multiplexed_cuts = 5;
  EXPECT_EQ(r.cbit_area_with_retiming(), 10 * 9 + 5 * 23);
  EXPECT_EQ(r.cbit_area_without_retiming(), 15 * 23);
  EXPECT_GT(r.pct_without_retiming(), r.pct_with_retiming());
  EXPECT_GT(r.saving_points(), 0.0);
  EXPECT_GT(r.saving_relative(), 0.0);
}

TEST(AreaReportTest, ZeroCutsMeanZeroArea) {
  AreaReport r;
  r.circuit_area = 500;
  EXPECT_EQ(r.cbit_area_with_retiming(), 0);
  EXPECT_DOUBLE_EQ(r.pct_with_retiming(), 0.0);
  EXPECT_DOUBLE_EQ(r.pct_without_retiming(), 0.0);
  EXPECT_DOUBLE_EQ(r.saving_relative(), 0.0);
}

TEST(AreaReportTest, PercentageUsesTotalIncludingCbit) {
  AreaReport r;
  r.circuit_area = 77;
  r.retimable_cuts = 0;
  r.multiplexed_cuts = 1;  // 23 units
  EXPECT_NEAR(r.pct_without_retiming(), 100.0 * 23 / (77 + 23), 1e-9);
}

TEST(CbitCostTest, PicksSmallestStandardLength) {
  const CbitAssignmentCost c = assign_cbit_cost({3, 4, 9, 17, 30});
  EXPECT_EQ(c.total_cbits, 5u);
  EXPECT_EQ(c.count_by_type[0], 2u);  // two d1 (<=4)
  EXPECT_EQ(c.count_by_type[2], 1u);  // one d3 (<=12)
  EXPECT_EQ(c.count_by_type[4], 1u);  // one d5 (<=24)
  EXPECT_EQ(c.count_by_type[5], 1u);  // one d6 (<=32)
  EXPECT_NEAR(c.total_area_dff, 8.14 * 2 + 24.48 + 47.66 + 63.12, 1e-9);
}

TEST(CbitCostTest, RegisterOnlyPartitionsNeedNoCbit) {
  const CbitAssignmentCost c = assign_cbit_cost({0, 0, 4});
  EXPECT_EQ(c.total_cbits, 1u);
}

// ------------------------------------------------------------- paper data ---

TEST(PaperDataTest, TablesHaveExpectedShape) {
  EXPECT_EQ(paper::table10_lk16().size(), 17u);
  EXPECT_EQ(paper::table11_lk24().size(), 10u);
  EXPECT_EQ(paper::table12().size(), 17u);
  const auto s5378 = paper::table10_row("s5378");
  ASSERT_TRUE(s5378.has_value());
  EXPECT_EQ(s5378->nets_cut, 420u);
  EXPECT_EQ(s5378->dffs_on_scc, 124u);
  EXPECT_FALSE(paper::table11_row("s27").has_value());
  const auto a = paper::table12_row("s641");
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->with_retiming_16, 18.9);
}

TEST(PaperDataTest, Table11CircuitsCutFewerNetsThanTable10) {
  // The published shape our benches must reproduce — with one anomaly the
  // paper itself contains: s713 cuts *more* nets at l_k = 24 (38 vs 34).
  for (const auto& row24 : paper::table11_lk24()) {
    if (row24.name == "s713") continue;
    const auto row16 = paper::table10_row(row24.name);
    ASSERT_TRUE(row16.has_value());
    EXPECT_LT(row24.nets_cut, row16->nets_cut) << row24.name;
  }
}

TEST(PaperDataTest, RetimingAlwaysWinsInTable12) {
  for (const auto& row : paper::table12()) {
    EXPECT_LE(row.with_retiming_16, row.without_retiming_16) << row.name;
    EXPECT_LE(row.with_retiming_24, row.without_retiming_24) << row.name;
  }
}

// ---------------------------------------------------------------- compile ---

TEST(CompileTest, S27EndToEnd) {
  MercedConfig config;
  config.lk = 3;
  config.flow.seed = 27;
  const Netlist nl = make_s27();
  const MercedResult r = compile(nl, config);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.stats.name, "s27");
  EXPECT_EQ(r.num_sccs, 2u);
  EXPECT_EQ(r.dffs_on_scc, 3u);
  // Paper Figure 7 finds 4 partitions for s27 at lk=3.
  EXPECT_GE(r.partitions.count(), 3u);
  EXPECT_LE(r.partitions.count(), 6u);
  for (std::size_t iota : r.partition_inputs) EXPECT_LE(iota, 3u);
  EXPECT_EQ(r.cut_net_ids.size(), r.cuts.nets_cut);
  EXPECT_EQ(r.area.retimable_cuts + r.area.multiplexed_cuts, r.cuts.nets_cut);
  EXPECT_EQ(r.area.exact_retimable_cuts + r.area.exact_multiplexed_cuts,
            r.cuts.nets_cut);
  EXPECT_GT(r.total_seconds, 0.0);
}

TEST(CompileTest, PreparedCircuitReuseMatchesDirectCompile) {
  const Netlist nl = load_benchmark("s510");
  MercedConfig config;
  config.lk = 16;
  const PreparedCircuit prepared(nl, config.flow);
  const MercedResult via_prepared = compile(prepared, config);
  const MercedResult direct = compile(nl, config);
  EXPECT_EQ(via_prepared.cuts.nets_cut, direct.cuts.nets_cut);
  EXPECT_EQ(via_prepared.partitions.count(), direct.partitions.count());
  EXPECT_EQ(via_prepared.area.retimable_cuts, direct.area.retimable_cuts);
}

TEST(CompileTest, RetimingNeverCostsMoreThanNoRetiming) {
  for (const char* name : {"s27", "s510", "s641", "s820"}) {
    MercedConfig config;
    config.lk = 16;
    const MercedResult r = compile(load_benchmark(name), config);
    EXPECT_LE(r.area.cbit_area_with_retiming(), r.area.cbit_area_without_retiming())
        << name;
    EXPECT_LE(r.area.pct_with_retiming(), r.area.pct_without_retiming()) << name;
  }
}

TEST(CompileTest, LargerLkCutsFewerNetsInAggregate) {
  // Not strictly monotone per circuit (the paper's own s713 cuts 38 nets at
  // l_k = 24 vs 34 at l_k = 16), but the aggregate trend must hold.
  std::size_t total16 = 0, total24 = 0;
  for (const char* name : {"s641", "s713", "s510", "s820", "s1423"}) {
    const Netlist nl = load_benchmark(name);
    MercedConfig config;
    const PreparedCircuit prepared(nl, config.flow);
    config.lk = 16;
    total16 += compile(prepared, config).cuts.nets_cut;
    config.lk = 24;
    total24 += compile(prepared, config).cuts.nets_cut;
  }
  EXPECT_LT(total24, total16);
}

TEST(CompileTest, AggregateAccountingMatchesSccExcess) {
  // Paper accounting: multiplexed = sum over SCCs of max(0, cuts - DFFs).
  MercedConfig config;
  config.lk = 16;
  const Netlist nl = load_benchmark("s820");
  const PreparedCircuit prepared(nl, config.flow);
  const MercedResult r = compile(prepared, config);
  std::size_t excess = 0;
  for (std::size_t s = 0; s < prepared.sccs.count(); ++s) {
    const std::size_t cuts = r.cuts.cuts_per_scc[s];
    const std::size_t dffs = prepared.sccs.dff_count[s];
    excess += cuts > dffs ? cuts - dffs : 0;
  }
  EXPECT_EQ(r.area.multiplexed_cuts, excess);
}

TEST(CompileTest, ReportPrints) {
  MercedConfig config;
  config.lk = 3;
  const MercedResult r = compile(make_s27(), config);
  std::ostringstream ss;
  print_report(ss, r);
  EXPECT_NE(ss.str().find("s27"), std::string::npos);
  EXPECT_NE(ss.str().find("nets cut"), std::string::npos);
}

// ----------------------------------------------------------- table printer ---

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long header"});
  t.add_row({"xxxxxx", "1"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("| xxxxxx |"), std::string::npos);
  EXPECT_NE(out.find("long header"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(std::size_t{42}), "42");
}

}  // namespace
}  // namespace merced
