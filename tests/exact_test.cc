// Tests of the branch-and-bound exact PIC solver (src/exact) and the
// certifying-compilation loop around it.
//
// Coverage:
//  * brute-force cross-check — exhaustive set-partition enumeration on tiny
//    synthetic circuits must agree with solve_exact on feasibility and
//    optimum cut count (the solver's ground-truth anchor);
//  * golden optimality — pinned proven-optimal costs for the suite circuits
//    the default node budget can close at lk = 16;
//  * never-silent contract — every solve ends in a definite claim: a proven
//    optimum, a proven infeasibility, or a budget report with an explicit
//    [lower_bound, best_cost] gap;
//  * incumbent independence — seeding the search with the heuristic result
//    changes the path, never the proven optimum;
//  * exact_compile — the heuristic-then-exact driver adopts the better
//    artifact and reports the heuristic gap against the proven bound;
//  * certificates — compile certificates are byte-identical across --jobs
//    and accepted by the independent checker (examples/certcheck).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bench_read.h"  // examples/certcheck — the independent checker
#include "check.h"       // examples/certcheck
#include "circuits/generator.h"
#include "circuits/registry.h"
#include "core/certificate.h"
#include "core/merced.h"
#include "exact/exact_solver.h"
#include "fuzz/fuzzer.h"
#include "graph/circuit_graph.h"
#include "netlist/bench_io.h"
#include "partition/clustering.h"

namespace merced {
namespace {

namespace ex = merced::exact;

constexpr std::size_t kInfeasibleCost = std::numeric_limits<std::size_t>::max();

/// Advances `a` to the next restricted growth string (canonical set
/// partition encoding: a[0] = 0, a[i] <= max(a[0..i-1]) + 1). Returns false
/// after the last partition.
bool next_partition(std::vector<int>& a) {
  const std::size_t n = a.size();
  for (std::size_t i = n; i-- > 1;) {
    int mx = 0;
    for (std::size_t j = 0; j < i; ++j) mx = std::max(mx, a[j]);
    if (a[i] <= mx) {
      ++a[i];
      std::fill(a.begin() + i + 1, a.end(), 0);
      return true;
    }
  }
  return false;
}

/// Exhaustive optimum: minimum cut-net count over ALL set partitions of the
/// comb nodes subject to iota <= lk, or kInfeasibleCost when none qualifies.
std::size_t brute_force_optimum(const CircuitGraph& g, std::size_t lk) {
  std::vector<NodeId> comb;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (is_comb_node(g, v)) comb.push_back(v);
  }
  const std::size_t n = comb.size();
  if (n == 0) return 0;

  std::vector<int> assign(n, 0);
  std::size_t best = kInfeasibleCost;
  do {
    Clustering c;
    c.cluster_of.assign(g.num_nodes(), kNoCluster);
    int num_clusters = 0;
    for (std::size_t i = 0; i < n; ++i) num_clusters = std::max(num_clusters, assign[i] + 1);
    c.clusters.resize(static_cast<std::size_t>(num_clusters));
    for (std::size_t i = 0; i < n; ++i) {
      c.cluster_of[comb[i]] = assign[i];
      c.clusters[static_cast<std::size_t>(assign[i])].push_back(comb[i]);
    }
    // DFFs are cluster members but contribute nothing to iota or cuts;
    // park them all in cluster 0 (mirrors the solver's re-attachment).
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.is_register(v)) {
        c.cluster_of[v] = 0;
        c.clusters[0].push_back(v);
      }
    }
    bool feasible = true;
    for (std::size_t ci = 0; ci < c.count() && feasible; ++ci) {
      if (input_count(g, c, ci) > lk) feasible = false;
    }
    if (feasible) best = std::min(best, cut_nets(g, c).size());
  } while (next_partition(assign));
  return best;
}

TEST(ExactBruteForceTest, MatchesExhaustiveEnumerationOnTinyCircuits) {
  // Tiny seeded synthetics, full set-partition enumeration. Circuits with
  // more than 9 comb nodes are skipped (Bell(9) = 21147 partitions is the
  // budget ceiling for a unit test); the seeds below leave ample coverage.
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SyntheticSpec spec;
    spec.name = "tiny";
    spec.num_pis = 3 + seed % 3;
    spec.num_dffs = 1 + seed % 4;
    spec.num_gates = 4 + seed % 4;
    spec.num_invs = seed % 3;
    spec.target_area = 0;
    spec.seed = seed * 977;
    const Netlist nl = generate_circuit(spec);
    const CircuitGraph g(nl);
    std::size_t ncomb = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (is_comb_node(g, v)) ++ncomb;
    }
    if (ncomb > 9) continue;

    for (std::size_t lk : {std::size_t{2}, std::size_t{3}, std::size_t{5}, std::size_t{8}}) {
      const std::size_t bf = brute_force_optimum(g, lk);
      ex::ExactOptions opt;
      opt.lk = lk;
      opt.max_nodes = 10'000'000;
      const ex::ExactResult r = ex::solve_exact(g, opt);
      ASSERT_NE(r.status, ex::ExactStatus::kBudgetExhausted)
          << "seed " << seed << " lk " << lk << ": tiny instance must close";
      if (bf == kInfeasibleCost) {
        EXPECT_EQ(r.status, ex::ExactStatus::kInfeasible)
            << "seed " << seed << " lk " << lk;
      } else {
        ASSERT_EQ(r.status, ex::ExactStatus::kOptimal) << "seed " << seed << " lk " << lk;
        EXPECT_EQ(r.best_cost, bf) << "seed " << seed << " lk " << lk;
        EXPECT_EQ(r.lower_bound, bf) << "optimal proof must close the bound";
        EXPECT_TRUE(r.found_solution);
        // The witness partition really has the claimed cost and is legal.
        EXPECT_EQ(cut_nets(g, r.partitions).size(), r.best_cost);
        for (std::size_t ci = 0; ci < r.partitions.count(); ++ci) {
          EXPECT_LE(input_count(g, r.partitions, ci), lk);
        }
      }
      ++checked;
    }
  }
  EXPECT_GE(checked, 40u) << "spec drift left too few brute-force checks";
}

// ---- golden optimality on the benchmark suite ----------------------------

struct OptimalCase {
  const char* circuit;
  std::size_t lk;
  std::size_t optimal_cuts;  ///< proven optimum (golden)
};

class ExactGoldenTest : public ::testing::TestWithParam<OptimalCase> {};

TEST_P(ExactGoldenTest, ProvesPinnedOptimum) {
  const OptimalCase& c = GetParam();
  const Netlist nl = load_benchmark(c.circuit);
  const CircuitGraph g(nl);
  ex::ExactOptions opt;
  opt.lk = c.lk;
  opt.max_nodes = 200'000;
  const ex::ExactResult r = ex::solve_exact(g, opt);
  ASSERT_EQ(r.status, ex::ExactStatus::kOptimal)
      << c.circuit << " lk=" << c.lk << " no longer closes in "
      << opt.max_nodes << " nodes (explored " << r.nodes << ")";
  EXPECT_EQ(r.best_cost, c.optimal_cuts) << c.circuit << " lk=" << c.lk;
  EXPECT_EQ(r.lower_bound, c.optimal_cuts);
  EXPECT_TRUE(r.found_solution);
}

INSTANTIATE_TEST_SUITE_P(
    // The provable-within-budget set (see EXPERIMENTS.md "Heuristic vs
    // exact"): s27 closes at every lk; s820/s832 close at lk = 24 where the
    // whole circuit fits one cluster. The larger suite instances are
    // bounded-gap territory and are covered by ExactContractTest instead.
    Suite, ExactGoldenTest,
    ::testing::Values(OptimalCase{"s27", 12, 0}, OptimalCase{"s27", 16, 0},
                      OptimalCase{"s27", 24, 0}, OptimalCase{"s832", 24, 0},
                      OptimalCase{"s820", 24, 0}),
    [](const ::testing::TestParamInfo<OptimalCase>& info) {
      std::string name(info.param.circuit);
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name + "_lk" + std::to_string(info.param.lk);
    });

// ---- never-silent contract ----------------------------------------------

TEST(ExactContractTest, EverySolveEndsInADefiniteClaim) {
  // Small half of the suite at lk = 16 under a deliberately tight budget:
  // whatever happens, the result must be a proven optimum, a proven
  // infeasibility, or an explicit bounded gap — never a silent "best effort".
  for (const char* name : {"s27", "s510", "s420.1", "s641", "s713", "s820",
                           "s832", "s838.1"}) {
    const Netlist nl = load_benchmark(name);
    const CircuitGraph g(nl);
    ex::ExactOptions opt;
    opt.lk = 16;
    opt.max_nodes = 2'000;
    const ex::ExactResult r = ex::solve_exact(g, opt);
    switch (r.status) {
      case ex::ExactStatus::kOptimal:
        EXPECT_TRUE(r.found_solution) << name;
        EXPECT_EQ(r.lower_bound, r.best_cost) << name;
        break;
      case ex::ExactStatus::kInfeasible:
        EXPECT_FALSE(r.found_solution) << name;
        break;
      case ex::ExactStatus::kBudgetExhausted:
        if (r.found_solution) {
          EXPECT_LE(r.lower_bound, r.best_cost)
              << name << ": bounded gap must be a real interval";
        }
        break;
    }
    EXPECT_GT(r.nodes, 0u) << name;
    EXPECT_GT(r.components, 0u) << name;
  }
}

// ---- incumbent independence (satellite: seeded == cold) ------------------

TEST(ExactPropertyTest, IncumbentSeededSolveMatchesColdStartOptimum) {
  // The heuristic incumbent seeds the upper bound and the value ordering;
  // it must never change the *answer*. Fuzz inputs keep the instances
  // varied; runs that exhaust the budget on either side are skipped (their
  // costs are bounds, not optima, and need not match).
  std::size_t compared = 0;
  for (std::size_t run = 0; run < 10; ++run) {
    const Netlist nl = fuzz::fuzz_input(/*base_seed=*/11, run);
    const CircuitGraph g(nl);
    MercedConfig config;
    config.lk = 12;
    const MercedResult heur = compile(nl, config);

    ex::ExactOptions opt;
    opt.lk = 12;
    opt.max_nodes = 200'000;
    const ex::ExactResult cold = ex::solve_exact(g, opt);
    const ex::ExactResult seeded =
        ex::solve_exact(g, opt, heur.feasible ? &heur.partitions : nullptr);

    EXPECT_EQ(cold.status == ex::ExactStatus::kInfeasible,
              seeded.status == ex::ExactStatus::kInfeasible)
        << "run " << run << ": infeasibility is instance truth, not seed luck";
    if (cold.status == ex::ExactStatus::kOptimal &&
        seeded.status == ex::ExactStatus::kOptimal) {
      EXPECT_EQ(cold.best_cost, seeded.best_cost) << "run " << run;
      EXPECT_EQ(cold.lower_bound, seeded.lower_bound) << "run " << run;
      ++compared;
    }
    if (heur.feasible && seeded.status == ex::ExactStatus::kOptimal) {
      EXPECT_GE(heur.cuts.nets_cut, seeded.best_cost)
          << "run " << run << ": heuristic beat the proven optimum";
    }
  }
  EXPECT_GE(compared, 5u) << "too few runs closed on both sides";
}

// ---- exact_compile -------------------------------------------------------

TEST(ExactCompileTest, ProvedOptimumAdoptsBestArtifact) {
  // s832 at lk = 24 closes within budget: the heuristic's 0-cut result is
  // proven optimal and the gap collapses to zero.
  const Netlist nl = load_benchmark("s832");
  MercedConfig config;
  config.lk = 24;
  ex::ExactOptions opt;
  opt.lk = 24;
  opt.max_nodes = 200'000;
  const ex::ExactCompileResult ec = ex::exact_compile(nl, config, opt);

  ASSERT_TRUE(ec.heuristic_feasible);
  ASSERT_TRUE(ec.proof.optimal());
  EXPECT_EQ(ec.result.cuts.nets_cut,
            std::min(ec.heuristic_cost, ec.proof.best_cost));
  EXPECT_EQ(ec.heuristic_gap(), ec.heuristic_cost - ec.proof.lower_bound);
  EXPECT_TRUE(ec.result.feasible);
  // The adopted artifact still passes the independent static verifier.
  EXPECT_TRUE(verify_result(nl, ec.result, config).clean());
}

TEST(ExactCompileTest, BudgetExhaustionReportsHonestBoundedGap) {
  // s510 at lk = 16 does NOT close in 200k nodes: the driver must keep the
  // heuristic artifact and report an explicit [lower_bound, heuristic]
  // interval — never pretend optimality.
  const Netlist nl = load_benchmark("s510");
  MercedConfig config;
  config.lk = 16;
  ex::ExactOptions opt;
  opt.lk = 16;
  opt.max_nodes = 200'000;
  const ex::ExactCompileResult ec = ex::exact_compile(nl, config, opt);

  ASSERT_TRUE(ec.heuristic_feasible);
  EXPECT_EQ(ec.proof.status, ex::ExactStatus::kBudgetExhausted);
  EXPECT_GT(ec.proof.lower_bound, 0u) << "search proved a nontrivial floor";
  EXPECT_LE(ec.proof.lower_bound, ec.heuristic_cost);
  EXPECT_EQ(ec.heuristic_gap(), ec.heuristic_cost - ec.proof.lower_bound);
  EXPECT_TRUE(ec.result.feasible);
  EXPECT_EQ(ec.result.cuts.nets_cut,
            ec.proof.improved_incumbent ? ec.proof.best_cost : ec.heuristic_cost);
  EXPECT_TRUE(verify_result(nl, ec.result, config).clean());
}

// ---- certificates (satellite: jobs-independent, checker-accepted) --------

TEST(ExactCertificateTest, CertificateIsByteIdenticalAcrossJobsAndAccepted) {
  const Netlist nl = load_benchmark("s641");
  auto certify = [&](std::size_t jobs) {
    MercedConfig config;
    config.lk = 16;
    config.multi_start = 4;  // give the thread pool real fan-out to race
    config.jobs = jobs;
    const MercedResult r = compile(nl, config);
    EXPECT_TRUE(r.feasible);
    const CircuitGraph graph(nl);
    const SccInfo sccs = find_sccs(graph);
    CertificateInfo info;
    info.circuit = "s641";
    info.lk = config.lk;
    info.beta = config.beta;
    return make_certificate(nl, graph, sccs, r, info);
  };
  const std::string serial = certify(1);
  const std::string parallel = certify(8);
  EXPECT_EQ(serial, parallel)
      << "certificate text must not depend on worker count";

  // The independent checker (own parser, own SCC, zero compiler linkage)
  // accepts the claim set.
  const certcheck::BNetlist bn = certcheck::parse_bench(write_bench(nl));
  const certcheck::CheckResult cr = certcheck::check_certificate(bn, serial);
  EXPECT_TRUE(cr.ok) << cr.rule << ": " << cr.message;
}

TEST(ExactCertificateTest, ExactCompileCertificateVerifies) {
  const Netlist nl = load_benchmark("s420.1");
  MercedConfig config;
  config.lk = 16;
  ex::ExactOptions opt;
  opt.lk = 16;
  opt.max_nodes = 200'000;
  const ex::ExactCompileResult ec = ex::exact_compile(nl, config, opt);
  ASSERT_TRUE(ec.result.feasible);

  const CircuitGraph graph(nl);
  const SccInfo sccs = find_sccs(graph);
  CertificateInfo info;
  info.circuit = "s420.1";
  info.source = ec.proof.improved_incumbent ? "exact" : "heuristic";
  info.lk = config.lk;
  info.beta = config.beta;
  const std::string cert = make_certificate(nl, graph, sccs, ec.result, info);
  const certcheck::BNetlist bn = certcheck::parse_bench(write_bench(nl));
  const certcheck::CheckResult cr = certcheck::check_certificate(bn, cert);
  EXPECT_TRUE(cr.ok) << cr.rule << ": " << cr.message;
}

}  // namespace
}  // namespace merced
